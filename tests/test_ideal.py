"""The ideal-topology oracle and the classical Chord graph."""

from __future__ import annotations

import random

import pytest

from repro.core.ideal import (
    chord_edges,
    chord_successor,
    compute_ideal,
    gap_to_successor,
)
from repro.core.noderef import NodeRef, make_ref
from repro.idspace.ring import IdSpace

SPACE = IdSpace(16)


class TestGap:
    def test_two_peers(self):
        assert gap_to_successor(SPACE, [100, 200], 100) == 100
        assert gap_to_successor(SPACE, [100, 200], 200) == SPACE.size - 100

    def test_single_peer_full_circle(self):
        assert gap_to_successor(SPACE, [100], 100) == SPACE.size


class TestComputeIdeal:
    def test_empty(self):
        ideal = compute_ideal(SPACE, [])
        assert ideal.refs == () and ideal.total_nodes == 0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            compute_ideal(SPACE, [5, 5])

    def test_single_peer(self):
        ideal = compute_ideal(SPACE, [100])
        assert ideal.m_star[100] == 1
        u0 = NodeRef.real(100)
        u1 = make_ref(SPACE, 100, 1)
        assert set(ideal.refs) == {u0, u1}
        # two refs: mutual neighbors, mutual ring edges
        assert ideal.nu[u0] == frozenset({u1})
        assert ideal.nu[u1] == frozenset({u0})
        assert ideal.nr[u0] == frozenset({u1})
        assert ideal.nr[u1] == frozenset({u0})
        # no self wrap pointers
        assert ideal.wrap_rl[u0] is None and ideal.wrap_rr[u0] is None

    def test_interior_node_neighbors(self):
        ideal = compute_ideal(SPACE, [1000, 30000, 50000])
        refs = list(ideal.refs)
        for i in range(1, len(refs) - 1):
            ref = refs[i]
            want = {refs[i - 1], refs[i + 1]}
            if ideal.rl[ref] is not None:
                want.add(ideal.rl[ref])
            if ideal.rr[ref] is not None:
                want.add(ideal.rr[ref])
            want.discard(ref)
            assert ideal.nu[ref] == frozenset(want)

    def test_extremes_hold_ring_edges(self):
        ideal = compute_ideal(SPACE, [1000, 30000, 50000])
        lo, hi = ideal.refs[0], ideal.refs[-1]
        assert ideal.nr[lo] == frozenset({hi})
        assert ideal.nr[hi] == frozenset({lo})
        for ref in ideal.refs[1:-1]:
            assert ideal.nr[ref] == frozenset()

    def test_wrap_pointers_cover_gaps(self):
        ideal = compute_ideal(SPACE, [1000, 30000, 50000])
        reals = [r for r in ideal.refs if r.is_real]
        r_min, r_max = reals[0], reals[-1]
        for ref in ideal.refs:
            if ideal.rr[ref] is None and ref != r_min:
                assert ideal.wrap_rr[ref] == r_min
            if ideal.rl[ref] is None and ref != r_max:
                assert ideal.wrap_rl[ref] == r_max

    def test_m_star_matches_gap_formula(self):
        ids = [100, 5000, 40000]
        ideal = compute_ideal(SPACE, ids)
        for u in ids:
            gap = gap_to_successor(SPACE, ids, u)
            assert ideal.m_star[u] == SPACE.level_count(gap)

    def test_virtual_node_count(self):
        ids = [100, 5000, 40000]
        ideal = compute_ideal(SPACE, ids)
        assert ideal.virtual_nodes == sum(ideal.m_star.values())
        assert ideal.total_nodes == len(ids) + ideal.virtual_nodes

    def test_desired_edges_cover_nu_and_nr(self):
        ideal = compute_ideal(SPACE, [100, 9000])
        edges = ideal.desired_edges()
        for x, targets in ideal.nu.items():
            for t in targets:
                assert (x, t, "u") in edges
        for x, targets in ideal.nr.items():
            for t in targets:
                assert (x, t, "r") in edges


class TestChordSuccessor:
    def test_exact_position(self):
        assert chord_successor(SPACE, [10, 20], 10) == 10

    def test_wraps(self):
        assert chord_successor(SPACE, [10, 20], 60000) == 10

    def test_between(self):
        assert chord_successor(SPACE, [10, 20], 15) == 20

    def test_no_peers(self):
        with pytest.raises(ValueError):
            chord_successor(SPACE, [], 5)


class TestChordEdges:
    def test_empty_for_singleton(self):
        assert chord_edges(SPACE, [42]) == set()

    def test_successor_edges_present(self):
        ids = sorted(random.Random(0).sample(range(SPACE.size), 8))
        edges = chord_edges(SPACE, ids)
        for i, u in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert (u, succ) in edges

    def test_no_self_edges(self):
        ids = [5, 9000, 44000]
        assert all(u != v for u, v in chord_edges(SPACE, ids))

    def test_finger_targets_correct(self):
        ids = [5, 9000, 44000]
        edges = chord_edges(SPACE, ids)
        for u, v in edges:
            assert v in ids

    def test_out_degree_at_most_m_plus_one(self):
        ids = sorted(random.Random(1).sample(range(SPACE.size), 10))
        edges = chord_edges(SPACE, ids)
        ideal = compute_ideal(SPACE, ids)
        for u in ids:
            out = sum(1 for a, _ in edges if a == u)
            assert 1 <= out <= ideal.m_star[u] + 1
