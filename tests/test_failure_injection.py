"""Failure injection during convergence.

Section 4 analyzes churn against *stable* networks; self-stabilization
(Theorem 1.1) promises more: whatever state churn leaves behind — as
long as the survivors stay weakly connected — the network still
converges.  These tests inject crashes, leaves and joins into networks
that are still mid-stabilization.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.connectivity import is_weakly_connected, weakly_connected_components
from repro.workloads.initial import build_random_network, random_peer_ids


def survivors_connected(net) -> bool:
    graph = net.snapshot()
    live_refs = [
        node.ref for p in net.peers.values() for node in p.state.nodes.values()
    ]
    comps = weakly_connected_components(graph)
    # only count components containing live simulated nodes
    live = set(live_refs)
    relevant = [c for c in comps if c & live]
    return len(relevant) == 1


class TestCrashMidConvergence:
    @pytest.mark.parametrize("when", [1, 3, 6])
    def test_crash_during_stabilization(self, when):
        net = build_random_network(n=14, seed=50)
        net.run(when)
        # crash a random non-cut peer: try candidates until the
        # survivors remain weakly connected (the theorem's precondition)
        rng = random.Random(when)
        for candidate in rng.sample(net.peer_ids, len(net.peer_ids)):
            saved = net.peers[candidate]
            net.crash(candidate)
            net.run_round()  # let purging happen
            if survivors_connected(net):
                break
            # restore not possible: crash is destructive; but with the
            # dense random start every single crash keeps connectivity
            # in practice — assert instead of restoring
            pytest.fail("crash disconnected the overlay (unexpected for this workload)")
        net.run_until_stable(max_rounds=5000)
        assert net.matches_ideal()

    def test_two_crashes_back_to_back(self):
        net = build_random_network(n=16, seed=51, extra_edge_prob=0.3)
        net.run(2)
        net.crash(net.peer_ids[3])
        net.run(1)
        net.crash(net.peer_ids[7])
        net.run_round()
        if survivors_connected(net):
            net.run_until_stable(max_rounds=5000)
            assert net.matches_ideal()


class TestJoinMidConvergence:
    @pytest.mark.parametrize("when", [0, 2, 5])
    def test_join_during_stabilization(self, when):
        net = build_random_network(n=12, seed=52)
        net.run(when)
        rng = random.Random(when)
        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        net.join(new_id, rng.choice(net.peer_ids))
        net.run_until_stable(max_rounds=5000)
        assert new_id in net.peers
        assert net.matches_ideal()

    def test_join_burst_mid_convergence(self):
        net = build_random_network(n=10, seed=53)
        net.run(3)
        rng = random.Random(53)
        for _ in range(4):
            new_id = random_peer_ids(1, rng, net.space)[0]
            while new_id in net.peers:
                new_id = random_peer_ids(1, rng, net.space)[0]
            net.join(new_id, rng.choice(net.peer_ids))
        net.run_until_stable(max_rounds=5000)
        assert len(net.peers) == 14
        assert net.matches_ideal()


class TestLeaveMidConvergence:
    def test_graceful_leave_during_stabilization(self):
        net = build_random_network(n=14, seed=54)
        net.run(4)
        net.leave(net.peer_ids[6])
        net.run_until_stable(max_rounds=5000)
        assert net.matches_ideal()

    def test_mixed_storm(self):
        """Crash + leave + two joins within five rounds of a cold start."""
        net = build_random_network(n=14, seed=55, extra_edge_prob=0.3)
        rng = random.Random(55)
        net.run(1)
        net.leave(net.peer_ids[2])
        net.run(1)
        net.crash(net.peer_ids[9])
        net.run(1)
        for _ in range(2):
            new_id = random_peer_ids(1, rng, net.space)[0]
            while new_id in net.peers:
                new_id = random_peer_ids(1, rng, net.space)[0]
            net.join(new_id, rng.choice(net.peer_ids))
            net.run(1)
        net.run_round()
        if survivors_connected(net):
            net.run_until_stable(max_rounds=5000)
            assert net.matches_ideal()
            assert is_weakly_connected(net.snapshot())
