"""Property-based tests of the core protocol invariants.

Hypothesis drives small random instances through the full pipeline and
checks the paper's headline guarantees end to end:

* Theorem 1.1 — any weakly connected start stabilizes to the ideal
  topology (n ≤ 7 keeps each example fast);
* Fact 2.1 — the Chord graph is contained in every stable state;
* the stable state is a fixed point and survives arbitrary extra rounds;
* churn events never break re-stabilization.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ideal import chord_edges
from repro.core.network import ReChordNetwork
from repro.graphs.digraph import EdgeKind
from repro.graphs.generators import gnp_connected_graph, random_orientation
from repro.idspace.ring import IdSpace
from repro.workloads.initial import random_peer_ids

SPACE = IdSpace(32)

sizes = st.integers(min_value=1, max_value=7)
seeds = st.integers(min_value=0, max_value=10_000)


def build(n: int, seed: int, extra_ring: bool = False, extra_conn: bool = False) -> ReChordNetwork:
    rng = random.Random(seed)
    ids = random_peer_ids(n, rng, SPACE)
    net = ReChordNetwork(SPACE)
    for u in ids:
        net.add_peer(u)
    if n > 1:
        edges = random_orientation(gnp_connected_graph(n, 0.2, rng), rng)
        ordered = sorted(ids)
        for a, b in edges:
            net.add_initial_edge(net.ref(ordered[a]), net.ref(ordered[b]))
        if extra_ring:
            net.add_initial_edge(
                net.ref(rng.choice(ordered)), net.ref(rng.choice(ordered)), EdgeKind.RING
            )
        if extra_conn:
            net.add_initial_edge(
                net.ref(rng.choice(ordered)), net.ref(rng.choice(ordered)), EdgeKind.CONNECTION
            )
    return net


@given(n=sizes, seed=seeds)
@settings(max_examples=25)
def test_always_stabilizes_to_ideal(n, seed):
    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    assert net.matches_ideal(), net.ideal_mismatches(limit=3)


@given(n=st.integers(min_value=2, max_value=7), seed=seeds)
@settings(max_examples=20)
def test_chord_subgraph_always_holds(n, seed):
    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    have = net.rechord_projection()
    for edge in chord_edges(net.space, net.peer_ids):
        assert edge in have


@given(n=sizes, seed=seeds, extra=st.integers(min_value=1, max_value=5))
@settings(max_examples=15)
def test_stable_state_is_invariant(n, seed, extra):
    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    fp = net.fingerprint()
    net.run(extra)
    assert net.fingerprint() == fp


@given(n=sizes, seed=seeds)
@settings(max_examples=15)
def test_corrupt_marked_edges_still_stabilize(n, seed):
    net = build(n, seed, extra_ring=True, extra_conn=True)
    net.run_until_stable(max_rounds=2000)
    assert net.matches_ideal()


@given(n=st.integers(min_value=2, max_value=6), seed=seeds)
@settings(max_examples=15)
def test_crash_then_restabilize(n, seed):
    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    rng = random.Random(seed + 1)
    victim = rng.choice(net.peer_ids)
    net.crash(victim)
    net.run_until_stable(max_rounds=2000)
    assert net.matches_ideal()


@given(n=st.integers(min_value=1, max_value=6), seed=seeds)
@settings(max_examples=15)
def test_join_then_restabilize(n, seed):
    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    rng = random.Random(seed + 2)
    new_id = random_peer_ids(1, rng, SPACE)[0]
    while new_id in net.peers:
        new_id = random_peer_ids(1, rng, SPACE)[0]
    net.join(new_id, rng.choice(net.peer_ids))
    net.run_until_stable(max_rounds=2000)
    assert net.matches_ideal()


@given(n=sizes, seed=seeds)
@settings(max_examples=10)
def test_total_nodes_matches_ideal_account(n, seed):
    """Lemma 3.1's accounting: total nodes = n + sum of m*(u)."""
    from repro.core.ideal import compute_ideal

    net = build(n, seed)
    net.run_until_stable(max_rounds=2000)
    ideal = compute_ideal(net.space, net.peer_ids)
    simulated = sum(len(p.state.nodes) for p in net.peers.values())
    assert simulated == ideal.total_nodes
