"""Additional local-checker cases: every invariant class trips.

Complements tests/test_stability.py by exercising each violation label
of `repro.core.checker.local_check_peer` individually.
"""

from __future__ import annotations

from repro.core.checker import local_check_peer
from repro.core.noderef import NodeRef
from tests.conftest import stabilized


def some_interior_peer(net):
    """A peer that is not the global extreme holder (mid-ring)."""
    return net.peers[net.peer_ids[len(net.peer_ids) // 2]]


class TestCheckerViolationClasses:
    def test_level_violation(self):
        net = stabilized(10, seed=400)
        peer = some_interior_peer(net)
        peer.state.ensure_level(peer.state.max_level() + 1)
        assert any("levels" in p for p in local_check_peer(peer))

    def test_stale_rl_cache(self):
        net = stabilized(10, seed=401)
        peer = some_interior_peer(net)
        node = peer.state.nodes[0]
        node.rl = None  # cache no longer matches knowledge
        problems = local_check_peer(peer)
        assert any("rl cache" in p for p in problems)

    def test_missing_neighbor_detected(self):
        net = stabilized(10, seed=402)
        peer = some_interior_peer(net)
        node = peer.state.nodes[0]
        # removing the closest-left edge breaks invariant 3 (for this
        # check, the knowledge still names the neighbor via siblings)
        lefts = sorted((w for w in node.nu if w < node.ref), key=lambda r: r.key)
        if lefts:
            closest = lefts[-1]
            if any(
                closest in other.nu
                for lvl, other in peer.state.nodes.items()
                if other is not node
            ) or closest in {n.ref for n in peer.state.nodes.values()}:
                node.nu.discard(closest)
                problems = local_check_peer(peer)
                assert problems

    def test_sortedness_violation_via_far_edge(self):
        net = stabilized(12, seed=403)
        peer = some_interior_peer(net)
        node = peer.state.nodes[0]
        far = NodeRef.real(net.peer_ids[0])
        if far != node.ref and far not in node.nu:
            node.nu.add(far)
            assert any("extra" in p for p in local_check_peer(peer))

    def test_clean_peer_passes(self):
        net = stabilized(10, seed=404)
        for peer in net.peers.values():
            assert local_check_peer(peer) == []
