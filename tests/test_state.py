"""PeerState: sibling management, knowledge queries, message resolution."""

from __future__ import annotations

import pytest

from repro.core.noderef import NodeRef, make_ref
from repro.core.state import PeerState
from repro.idspace.ring import IdSpace

SPACE = IdSpace(16)


def peer(pid=1000) -> PeerState:
    return PeerState(pid, SPACE)


class TestLevels:
    def test_starts_with_real_node(self):
        st = peer()
        assert st.levels() == [0]
        assert st.real_ref == NodeRef.real(1000)

    def test_ensure_level_idempotent(self):
        st = peer()
        a = st.ensure_level(2)
        b = st.ensure_level(2)
        assert a is b and st.levels() == [0, 2]

    def test_drop_level(self):
        st = peer()
        st.ensure_level(1)
        node = st.drop_level(1)
        assert node.ref.level == 1 and st.levels() == [0]

    def test_drop_level_zero_forbidden(self):
        with pytest.raises(ValueError):
            peer().drop_level(0)

    def test_max_level(self):
        st = peer()
        st.ensure_level(3)
        st.ensure_level(1)
        assert st.max_level() == 3

    def test_sibling_refs_sorted_linearly(self):
        st = peer(60000)  # near the top: some virtual ids wrap below
        st.ensure_level(1)
        st.ensure_level(2)
        refs = st.sibling_refs()
        assert [r.key for r in refs] == sorted(r.key for r in refs)

    def test_rejects_invalid_peer_id(self):
        with pytest.raises(ValueError):
            PeerState(SPACE.size, SPACE)


class TestResolve:
    def test_exact_level(self):
        st = peer()
        st.ensure_level(2)
        assert st.resolve(make_ref(SPACE, 1000, 2)).ref.level == 2

    def test_phantom_redirects_to_um(self):
        """[D8]: messages for deleted virtual nodes land on u_m."""
        st = peer()
        st.ensure_level(1)
        st.ensure_level(4)
        assert st.resolve(make_ref(SPACE, 1000, 9)).ref.level == 4

    def test_foreign_ref_is_none(self):
        assert peer().resolve(NodeRef.real(4)) is None


class TestKnowledge:
    def test_contains_siblings(self):
        st = peer()
        st.ensure_level(1)
        assert make_ref(SPACE, 1000, 1) in st.knowledge()

    def test_includes_all_edge_kinds_and_wraps(self):
        st = peer()
        node = st.nodes[0]
        a, b, c, d = (NodeRef.real(i) for i in (1, 2, 3, 5))
        node.nu.add(a)
        node.nr.add(b)
        node.nc.add(c)
        node.wrap_rl = d
        k = st.knowledge()
        assert {a, b, c, d} <= k

    def test_known_reals_filters_and_sorts(self):
        st = peer()
        node = st.nodes[0]
        node.nu.add(NodeRef.real(9))
        node.nu.add(make_ref(SPACE, 9, 1))  # virtual: excluded
        node.nu.add(NodeRef.real(3))
        reals = st.known_reals()
        assert [r.id for r in reals] == [3, 9, 1000]

    def test_gap_no_other_reals(self):
        assert peer().closest_real_gap() == SPACE.size

    def test_gap_uses_clockwise_distance(self):
        st = peer(100)
        st.nodes[0].nu.add(NodeRef.real(50))  # behind us: distance wraps
        st.nodes[0].nu.add(NodeRef.real(300))
        assert st.closest_real_gap() == 200

    def test_gap_ignores_self(self):
        st = peer(100)
        st.nodes[0].nu.add(NodeRef.real(100))
        assert st.closest_real_gap() == SPACE.size


class TestCanonical:
    def test_canonical_changes_with_state(self):
        st = peer()
        before = st.canonical()
        st.nodes[0].nu.add(NodeRef.real(5))
        assert st.canonical() != before

    def test_canonical_set_order_independent(self):
        a, b = peer(), peer()
        a.nodes[0].nu.update({NodeRef.real(1), NodeRef.real(2)})
        b.nodes[0].nu.update({NodeRef.real(2), NodeRef.real(1)})
        assert a.canonical() == b.canonical()

    def test_edge_count(self):
        st = peer()
        node = st.nodes[0]
        node.nu.add(NodeRef.real(1))
        node.nr.add(NodeRef.real(2))
        node.nc.add(NodeRef.real(3))
        node.wrap_rr = NodeRef.real(4)
        assert st.edge_count() == 4

    def test_node_all_out_refs(self):
        st = peer()
        node = st.nodes[0]
        node.nu.add(NodeRef.real(1))
        node.wrap_rl = NodeRef.real(2)
        assert node.all_out_refs() == {NodeRef.real(1), NodeRef.real(2)}


class TestVersionTracking:
    """The activity-tracking contract of PeerState.version: every
    effective mutation bumps, no-ops never do."""

    def test_effective_mutations_bump(self):
        st = peer()
        node = st.nodes[0]
        v = st.version
        node.nu.add(NodeRef.real(1))
        assert st.version > v
        v = st.version
        node.rl = NodeRef.real(1)
        assert st.version > v
        v = st.version
        st.ensure_level(2)
        assert st.version > v
        v = st.version
        st.drop_level(2)
        assert st.version > v

    def test_noop_mutations_do_not_bump(self):
        st = peer()
        node = st.nodes[0]
        ref = NodeRef.real(1)
        node.nu.add(ref)
        v = st.version
        node.nu.add(ref)            # already present
        node.nu.discard(NodeRef.real(99))  # absent
        node.rl = node.rl           # equal assignment
        st.ensure_level(0)          # exists
        node.nu |= {ref}            # no new elements
        assert st.version == v

    def test_set_reassignment_rewraps_and_bumps_on_change(self):
        from repro.core.state import TrackedSet

        st = peer()
        node = st.nodes[0]
        v = st.version
        node.nu = {NodeRef.real(7)}
        assert isinstance(node.nu, TrackedSet)
        assert st.version > v
        v = st.version
        node.nu = {NodeRef.real(7)}  # same content
        assert st.version == v

    def test_tracked_set_survives_pickle_and_copy(self):
        """Regression: the default set reduction rebuilt TrackedSet with
        the element list bound to the owner parameter, silently
        producing an EMPTY set under pickle / copy.copy."""
        import copy
        import pickle

        st = peer()
        node = st.nodes[0]
        node.nu.update({NodeRef.real(1), NodeRef.real(2), NodeRef.real(3)})
        restored = pickle.loads(pickle.dumps(node.nu))
        assert restored == node.nu and len(restored) == 3
        shallow = copy.copy(node.nu)
        assert shallow == node.nu and len(shallow) == 3
        deep = copy.deepcopy(st)
        assert deep.nodes[0].nu == node.nu
        # the deep copy tracks its own owner, not the original
        v = st.version
        deep.nodes[0].nu.add(NodeRef.real(4))
        assert st.version == v and deep.version > v
