"""Message payloads: canonical forms used by the fingerprint."""

from __future__ import annotations

from repro.core.events import (
    EdgeAdd,
    KIND_CONNECTION,
    KIND_RING,
    KIND_UNMARKED,
    NeighborIntro,
    RealCandidate,
    SIDE_LEFT,
    SIDE_RIGHT,
)
from repro.core.noderef import NodeRef


A, B = NodeRef.real(10), NodeRef.real(20)


class TestCanonical:
    def test_edge_add_identity(self):
        x = EdgeAdd(A, B, KIND_UNMARKED)
        y = EdgeAdd(A, B, KIND_UNMARKED)
        assert x == y and x.canonical() == y.canonical()

    def test_kind_distinguishes(self):
        assert (
            EdgeAdd(A, B, KIND_UNMARKED).canonical()
            != EdgeAdd(A, B, KIND_RING).canonical()
            != EdgeAdd(A, B, KIND_CONNECTION).canonical()
        )

    def test_direction_distinguishes(self):
        assert EdgeAdd(A, B, KIND_UNMARKED).canonical() != EdgeAdd(B, A, KIND_UNMARKED).canonical()

    def test_candidate_fields_distinguish(self):
        base = RealCandidate(A, B, SIDE_LEFT)
        assert base.canonical() != RealCandidate(A, B, SIDE_RIGHT).canonical()
        assert base.canonical() != RealCandidate(A, B, SIDE_LEFT, wrap=True).canonical()

    def test_intro_vs_edge_add_distinct(self):
        assert NeighborIntro(A, B).canonical() != EdgeAdd(A, B, KIND_UNMARKED).canonical()

    def test_canonicals_are_sortable_mixture(self):
        payloads = [
            EdgeAdd(A, B, KIND_UNMARKED),
            RealCandidate(A, B, SIDE_LEFT),
            NeighborIntro(B, A),
            EdgeAdd(B, A, KIND_RING),
            RealCandidate(B, A, SIDE_RIGHT, wrap=True),
        ]
        ordered = sorted(p.canonical() for p in payloads)
        assert len(ordered) == 5

    def test_frozen(self):
        import pytest

        payload = EdgeAdd(A, B, KIND_UNMARKED)
        with pytest.raises(Exception):
            payload.target = B  # type: ignore[misc]
