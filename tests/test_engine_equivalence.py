"""Differential kernel tests: dirty-set engine ≡ full-scan engine.

The activity-tracked kernel (dirty set + steady-emission replay + exact
change flag) must be **round-for-round equivalent** to the legacy
full-activation kernel: same :class:`StabilizationReport`, same final
``fingerprint()``, and same rule-firing counters, from any seeded random
start — including corrupt states with phantom virtual refs and garbage
marked edges — and across churn.  These tests drive both engines over
the same inputs and compare.
"""

from __future__ import annotations

import pytest

from repro.core.network import ReChordNetwork
from repro.netsim.rng import SeedSequence
from repro.workloads.churn import ChurnSchedule, apply_event
from repro.workloads.initial import (
    build_random_network,
    build_shaped_network,
    corrupt_network,
    random_peer_ids,
)

ROOT = SeedSequence(20211)


def build_pair(n: int, seed: int, corrupt: bool = False):
    """The same seeded start under both kernels."""
    a = build_random_network(n=n, seed=seed, incremental=True)
    b = build_random_network(n=n, seed=seed, incremental=False)
    if corrupt:
        corrupt_network(a, seed + 1)
        corrupt_network(b, seed + 1)
    return a, b


def assert_equivalent(a: ReChordNetwork, b: ReChordNetwork, context: str = "") -> None:
    """Full observable equality: states + in-flight + counters."""
    assert a.fingerprint() == b.fingerprint(), f"fingerprint diverged {context}"
    assert a.counters().fires == b.counters().fires, f"counters diverged {context}"


# 20 seeded random starts: mixed sizes, half of them corrupted with
# phantom virtual refs and garbage ring/connection edges
STARTS = [
    (n, seed, corrupt)
    for seed, (n, corrupt) in enumerate(
        [(1, False), (2, False), (2, True), (4, False), (4, True),
         (6, False), (6, True), (7, True), (8, False), (8, True),
         (9, False), (9, True), (10, False), (10, True), (11, True),
         (12, False), (12, True), (13, True), (14, False), (14, True)]
    )
]


class TestStabilizationEquivalence:
    @pytest.mark.parametrize("n,seed,corrupt", STARTS)
    def test_seeded_start_same_report_and_fingerprint(self, n, seed, corrupt):
        a, b = build_pair(n, seed, corrupt)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb, f"reports diverged at n={n} seed={seed} corrupt={corrupt}"
        assert_equivalent(a, b, f"at n={n} seed={seed} corrupt={corrupt}")

    def test_shaped_starts(self):
        for shape in ("line", "star", "two_cliques", "lollipop"):
            a = build_shaped_network(shape, 9, seed=5, incremental=True)
            b = build_shaped_network(shape, 9, seed=5, incremental=False)
            ra = a.run_until_stable(max_rounds=4000)
            rb = b.run_until_stable(max_rounds=4000)
            assert ra == rb, f"reports diverged for shape {shape}"
            assert_equivalent(a, b, f"for shape {shape}")

    def test_track_almost_equivalent(self):
        a, b = build_pair(10, seed=77)
        ra = a.run_until_stable(max_rounds=4000, track_almost=True)
        rb = b.run_until_stable(max_rounds=4000, track_almost=True)
        assert ra == rb
        assert ra.rounds_to_almost is not None


class TestLockstepEquivalence:
    """Round-for-round (not just final-state) equality."""

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_fingerprints_match_every_round(self, seed):
        a, b = build_pair(10, seed, corrupt=(seed % 2 == 0))
        for _ in range(60):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint()

    def test_change_flag_matches_fingerprint_comparison(self):
        """The incremental engine's O(active) change flag agrees with a
        genuine full fingerprint comparison at every boundary."""
        a = build_random_network(n=10, seed=4, incremental=True)
        prev = a.fingerprint()
        for _ in range(80):
            a.run_round()
            cur = a.fingerprint()
            assert a.scheduler.changed_last_round == (cur != prev)
            prev = cur


class TestChurnEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_churn_schedule_same_trajectory(self, seed):
        a, b = build_pair(10, seed)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        schedule = ChurnSchedule.random(a, events=4, seed=seed + 50)
        for event in schedule:
            apply_event(a, event)
            apply_event(b, event)
            ra = a.run_until_stable(max_rounds=4000)
            rb = b.run_until_stable(max_rounds=4000)
            assert ra == rb, f"reports diverged after {event}"
            assert_equivalent(a, b, f"after {event}")

    def test_graceful_leave_posts_equivalent(self):
        """leave() uses post(): one-shot injections must not upset the
        incremental engine's stability detection."""
        a, b = build_pair(8, seed=11)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        victim = a.peer_ids[2]
        a.leave(victim)
        b.leave(victim)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert_equivalent(a, b, "after leave")

    def test_join_into_stable_network(self):
        a, b = build_pair(9, seed=21)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        rng = ROOT.child("join", seed=21).rng()
        new_id = random_peer_ids(1, rng, a.space)[0]
        while new_id in a.peers:
            new_id = random_peer_ids(1, rng, a.space)[0]
        gateway = a.peer_ids[0]
        a.join(new_id, gateway)
        b.join(new_id, gateway)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert_equivalent(a, b, "after join")


class TestExternalMutationEquivalence:
    def test_direct_state_perturbation_detected(self):
        """Out-of-band edits (the version-counter sweep) behave exactly
        like the full-scan engine's unconditional re-activation."""
        from repro.core.noderef import NodeRef

        a, b = build_pair(10, seed=31)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        for net in (a, b):
            victim = net.peers[net.peer_ids[3]]
            foreign = NodeRef.real(net.peer_ids[0])
            victim.state.nodes[victim.state.max_level()].nu.add(foreign)
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert_equivalent(a, b, "after perturbation")

    def test_quiescent_network_replays_everything(self):
        """In the stable state the incremental engine executes nobody."""
        a = build_random_network(n=12, seed=41, incremental=True)
        a.run_until_stable(max_rounds=4000)
        a.run_round()
        executed, replayed = a.activity_stats()
        assert executed == 0
        assert replayed == len(a.peers)

    def test_out_of_band_level_drop_wakes_flow_receivers(self):
        """Regression: a level-set change flips ok/phantom verdicts for
        refs *in flight*, not only refs held in state — receivers of
        such messages must be re-activated or they replay emissions the
        full-scan engine would have sanitized.

        The scenario needs a quiescent receiver that holds NO state ref
        to the victim but has a victim-virtual-node ref inside an
        in-flight message, so the case is searched for explicitly
        (deterministic for the fixed build seed)."""
        from repro.experiments.scaling import build_ideal_network

        a = build_ideal_network(32, 3, incremental=True)
        b = build_ideal_network(32, 3, incremental=False)
        assert a.fingerprint() == b.fingerprint()

        case = None
        for env in a.scheduler.all_pending():
            payload = env.payload
            for attr in ("endpoint", "candidate"):
                ref = getattr(payload, attr, None)
                if ref is None or ref.level == 0 or ref.owner not in a.peers:
                    continue
                tgt = env.target
                if tgt == ref.owner or tgt not in a.peers:
                    continue
                if ref.owner not in a._refs_out.get(tgt, frozenset()):
                    case = (ref.owner, ref.level)
                    break
            if case:
                break
        assert case is not None, "seed no longer produces the scenario; pick another"
        victim, level = case
        for net in (a, b):
            if level in net.peers[victim].state.nodes:
                net.peers[victim].state.drop_level(level)
        for r in range(30):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint(), f"diverged at round {r}"

    def test_mid_round_removal_of_tracked_actor_stays_equivalent(self):
        """Regression: dirty marks added DURING a round (mid-round
        remove_actor) must survive the end-of-round dirty-set rebuild,
        including the extra carry round when the vanished flow leaves
        receivers' inboxes."""
        a = build_random_network(n=10, seed=71, incremental=True)
        b = build_random_network(n=10, seed=71, incremental=False)
        a.run_until_stable(max_rounds=4000)
        b.run_until_stable(max_rounds=4000)
        victim = a.peer_ids[4]
        for net in (a, b):
            sched = net.scheduler

            class Remover:
                def __init__(self, net):
                    self.net = net
                    self.done = False

                def step(self, inbox, ctx):
                    if not self.done:
                        self.done = True
                        self.net._remove_peer(victim)

            # the remover must sort AFTER every peer id so the victim has
            # already executed (and emitted) when it is removed mid-round
            sched.add_actor(2**70, Remover(net))
        for r in range(40):
            a.run_round()
            b.run_round()
            assert a.fingerprint() == b.fingerprint(), f"diverged at round {r}"
            assert a.counters().fires == b.counters().fires, f"counters at {r}"

    def test_incremental_fingerprint_tracks_configuration(self):
        """The rolling hash is constant across stable rounds and moves
        when the configuration genuinely changes."""
        net = build_random_network(n=10, seed=61, incremental=True)
        net.run_until_stable(max_rounds=4000)
        stable_hash = net.incremental_fingerprint()
        for _ in range(5):
            net.run_round()
            assert net.incremental_fingerprint() == stable_hash
        # perturb: the hash must move once the change lands at a boundary
        from repro.core.noderef import NodeRef

        victim = net.peers[net.peer_ids[1]]
        victim.state.nodes[0].nu.add(NodeRef.real(net.peer_ids[-1]))
        net.run_round()
        assert net.incremental_fingerprint() != stable_hash

    def test_incremental_fingerprint_requires_incremental_engine(self):
        net = build_random_network(n=4, seed=62, incremental=False)
        with pytest.raises(RuntimeError):
            net.incremental_fingerprint()

    def test_partial_activation_then_stability(self):
        """Partial rounds poison the caches conservatively; a subsequent
        run_until_stable still agrees with the full-scan engine."""
        a, b = build_pair(8, seed=51)
        a.run(5)
        b.run(5)
        active = set(a.peer_ids[:4])
        for _ in range(3):
            a.run_round(active=active)
            b.run_round(active=active)
        assert a.fingerprint() == b.fingerprint()
        ra = a.run_until_stable(max_rounds=4000)
        rb = b.run_until_stable(max_rounds=4000)
        assert ra == rb
        assert_equivalent(a, b, "after partial activation")


class TestTelemetryCensusEquivalence:
    """The telemetry counter census is part of the equivalence surface:
    the same seeded run under all three kernels yields identical rule
    firings, envelope-type counts and round/sent/dropped totals; the
    execute/replay split agrees between the two dirty-set kernels."""

    @pytest.mark.parametrize("n,seed,corrupt", STARTS[::5])
    def test_census_invariant(self, n, seed, corrupt):
        censuses = []
        kernel_stats = {}
        for engine in ("full", "incremental", "columnar"):
            net = build_random_network(n=n, seed=seed, engine=engine)
            if corrupt:
                corrupt_network(net, seed + 1)
            net.enable_telemetry()
            net.run_until_stable(max_rounds=4000)
            censuses.append(net.telemetry_census())
            kernel_stats[engine] = net.telemetry.kernel_stats()
        ctx = f"at n={n} seed={seed} corrupt={corrupt}"
        assert censuses[0] == censuses[1] == censuses[2], f"census diverged {ctx}"
        assert (
            kernel_stats["incremental"] == kernel_stats["columnar"]
        ), f"kernel split diverged {ctx}"

    def test_census_rules_match_network_counters(self):
        net = build_random_network(n=8, seed=3, engine="incremental")
        net.enable_telemetry()
        net.run_until_stable(max_rounds=4000)
        assert net.telemetry_census()["rules"] == dict(net.counters().fires)


class TestRuleBackendMatrix:
    """The full equivalence matrix: kernel × rule backend.

    One seeded campaign — stabilization, a latency model, live KV
    traffic, a crash, a transient partition and a join — is driven
    through every (engine, rule_backend) cell; fingerprints, rule
    counters, SLO outcome ledgers and the telemetry counter census must
    be identical across all six cells.
    """

    ENGINES = ("full", "incremental", "columnar")
    BACKENDS = ("scalar", "batched")

    @staticmethod
    def _campaign(engine: str, backend: str):
        from repro.dht.lookup import ReChordRouter
        from repro.dht.storage import KeyValueStore
        from repro.traffic import TrafficPlane, WorkloadGenerator
        from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT

        net = build_random_network(
            n=12, seed=31, engine=engine, rule_backend=backend
        )
        net.enable_telemetry()
        net.run_until_stable(max_rounds=5000)
        net.set_delivery_model({"kind": "reorder", "bound": 3, "seed": 21})
        plane = TrafficPlane(net, store=KeyValueStore(ReChordRouter(net)))
        WorkloadGenerator(
            plane,
            rate=1.5,
            op_mix=((OP_LOOKUP, 0.5), (OP_PUT, 0.3), (OP_GET, 0.2)),
            seed=31,
        )
        for r in range(40):
            if r == 8:
                net.crash(net.peer_ids[4])
            if r == 12:
                ids = net.peer_ids
                side = frozenset(ids[: len(ids) // 2])
                net.scheduler.set_drop_filter(
                    lambda env, _s=side: (env.sender in _s) != (env.target in _s)
                )
            if r == 22:
                net.scheduler.set_drop_filter(None)
            if r == 28:
                new_id = 123_456
                while new_id in net.peers:
                    new_id += 1
                net.join(new_id, net.peer_ids[0])
            net.run_round()
        net.run_until_stable(max_rounds=5000)
        return {
            "fingerprint": net.fingerprint(),
            "counters": dict(net.counters().fires),
            "census": net.telemetry_census(),
            "outcomes": plane.collector.summary()["outcomes"],
        }

    def test_matrix_identical_observables(self):
        cells = {
            (engine, backend): self._campaign(engine, backend)
            for engine in self.ENGINES
            for backend in self.BACKENDS
        }
        reference = cells[("full", "scalar")]
        for key, cell in cells.items():
            for field in ("fingerprint", "counters", "census", "outcomes"):
                assert cell[field] == reference[field], (
                    f"{field} diverged at {key} vs. (full, scalar)"
                )
