"""The shipped examples must actually run (docs-stay-honest tests)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Fact 2.1" in out and "ideal topology: reached exactly" in out

    def test_dht_keyvalue(self):
        out = run_example("dht_keyvalue.py")
        assert "100/100" in out and "durability" in out

    def test_churn_recovery(self):
        out = run_example("churn_recovery.py")
        assert "campaign: churn-recovery" in out  # scenario-engine driven
        assert "all invariants hold" in out

    def test_adversarial_start(self):
        out = run_example("adversarial_start.py")
        assert "ideal=True" in out
        assert "ring_correct=False" in out  # the classic-Chord contrast
