"""The streaming traffic plane: bounded collectors, the deadline wheel,
and batched injection.

Three contracts from the million-op campaign work, pinned here:

* **differential**: a streaming-mode :class:`SLOCollector` must agree
  with list mode *exactly* on every counter key of ``summary()`` on the
  same seeded campaign (only the p95 estimate is approximate), while
  holding O(reservoir) completions instead of O(ops);
* **wheel**: deadline expiry via the bucket wheel must survive
  adversarial ledgers — replies racing their own deadline round, late
  replies after wheel expiry, registrations landing on already-drained
  bucket rounds, zero-round deadlines;
* **batch**: ``issue_batch``/``post_batch`` must be indistinguishable
  from the historical one-op-at-a-time loop (fingerprints, summaries,
  dead-origin failures, drop filters).
"""

from __future__ import annotations

import random

import pytest

from repro.dht.lookup import ReChordRouter
from repro.dht.storage import KeyValueStore
from repro.traffic import TrafficPlane, WorkloadGenerator
from repro.traffic.messages import (
    OP_GET,
    OP_LOOKUP,
    OP_PUT,
    OUT_TIMEOUT,
    ST_OK,
    LookupReply,
)
from repro.traffic.slo import (
    MODE_STREAMING,
    IssuedOp,
    SLOCollector,
    latency_histogram,
)
from repro.workloads.initial import build_random_network, random_peer_ids

TRUTH = 42


def collector(mode="list", **kw) -> SLOCollector:
    return SLOCollector(lambda kid: TRUTH, mode=mode, **kw)


def issued(op_id, deadline, origin=1, kid=9, issue_round=0) -> IssuedOp:
    return IssuedOp(
        op_id=op_id, op=OP_LOOKUP, origin=origin, kid=kid,
        issue_round=issue_round, deadline=deadline,
    )


def reply(op_id, owner=TRUTH, status=ST_OK, kid=9, hops=3) -> LookupReply:
    return LookupReply(
        op=OP_LOOKUP, op_id=op_id, origin=1, kid=kid,
        status=status, owner=owner, hops=hops,
    )


# ----------------------------------------------------------------------
# streaming vs list differential on seeded campaigns
# ----------------------------------------------------------------------
class TestStreamingDifferential:
    #: counter keys that must agree bit-for-bit across modes
    EXACT_KEYS = (
        "issued", "completed", "outstanding", "success_rate", "violations",
        "late_replies", "outcomes", "latency_mean", "latency_max",
        "wire_delay_mean", "wire_delay_max", "hops_mean", "hops_max",
    )

    def _campaign(self, mode, seed, reservoir_size=64, sketch_quantiles=None):
        """One seeded churny campaign; returns its plane (post-drain)."""
        net = build_random_network(n=12, seed=seed, incremental=True)
        net.run_until_stable(max_rounds=5000)
        kv = KeyValueStore(ReChordRouter(net))
        plane = TrafficPlane(
            net, store=kv, collector_mode=mode,
            reservoir_size=reservoir_size, sketch_quantiles=sketch_quantiles,
        )
        WorkloadGenerator(
            plane, rate=6.0,
            op_mix=((OP_LOOKUP, 0.6), (OP_PUT, 0.25), (OP_GET, 0.15)),
            seed=seed, deadline=24,
        )
        join_rng = random.Random(seed + 1000)
        for r in range(30):
            if r == 10:
                net.crash(net.peer_ids[4])
            if r == 18:
                new_id = random_peer_ids(1, join_rng, net.space)[0]
                while new_id in net.peers:
                    new_id = random_peer_ids(1, join_rng, net.space)[0]
                net.join(new_id, net.peer_ids[0])
            plane.run_round()
        plane.generator.active = False
        plane.drain()
        return plane

    @pytest.mark.parametrize("seed", [3, 11])
    def test_counter_keys_match_exactly(self, seed):
        a = self._campaign("list", seed).collector.summary()
        b = self._campaign("streaming", seed).collector.summary()
        assert set(a) == set(b)
        for key in self.EXACT_KEYS:
            if key in a:
                assert a[key] == b[key], f"{key}: {a[key]} != {b[key]}"

    def test_p95_within_sketch_tolerance(self):
        a = self._campaign("list", 3).collector.summary()
        b = self._campaign("streaming", 3).collector.summary()
        assert abs(a["latency_p95"] - b["latency_p95"]) <= max(
            2.0, 0.3 * a["latency_p95"]
        )

    def test_optin_sketch_keys_identical_across_modes(self):
        """The opt-in sketches see the same latency stream in both modes,
        so their keys agree exactly (and stay separate from the counter
        keys, as in list mode today)."""
        qs = (0.5, 0.99)
        a = self._campaign("list", 3, sketch_quantiles=qs).collector.summary()
        b = self._campaign("streaming", 3, sketch_quantiles=qs).collector.summary()
        for key in ("latency_p50_sketch", "latency_p99_sketch"):
            assert key in a and a[key] == b[key]

    def test_streaming_holds_only_the_reservoir(self):
        plane = self._campaign("streaming", 3, reservoir_size=16)
        coll = plane.collector
        assert coll.completed_count > 16  # the campaign outgrew the cap
        assert len(coll.completed) == 16
        # every resident record is a real completion of this campaign
        assert all(c.op_id < coll.completed_count + len(coll.outstanding) + 1
                   for c in coll.completed)

    def test_streaming_reservoir_is_seeded(self):
        a = self._campaign("streaming", 11, reservoir_size=16)
        b = self._campaign("streaming", 11, reservoir_size=16)
        assert a.collector.completed == b.collector.completed

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            collector(mode="ring-buffer")


# ----------------------------------------------------------------------
# the deadline wheel under adversarial ledgers
# ----------------------------------------------------------------------
class TestDeadlineWheel:
    def test_reply_racing_its_own_deadline_round(self):
        """A reply consumed in the very round the deadline expires wins:
        the op completed, and the wheel bucket skips it lazily."""
        col = collector()
        col.register(issued(0, deadline=5))
        col.on_reply(reply(0), round_no=5)
        assert col.expire(round_no=5) == 0
        assert col.outcomes == {"ok": 1}
        assert col.late_replies == 0
        assert col.outstanding_count() == 0

    def test_late_reply_after_wheel_expiry(self):
        col = collector()
        col.register(issued(0, deadline=5))
        assert col.expire(round_no=8) == 1
        assert col.outcomes == {OUT_TIMEOUT: 1}
        col.on_reply(reply(0), round_no=9)
        assert col.late_replies == 1
        assert col.completed_count == 1  # the late reply is not a completion

    def test_registration_on_already_drained_bucket_round(self):
        """Draining bucket round R must not retire R forever: a later op
        whose deadline lands on R again is still expired."""
        col = collector()
        col.register(issued(0, deadline=5))
        assert col.expire(round_no=5) == 1
        col.register(issued(1, deadline=5, issue_round=5))
        assert col.expire(round_no=5) == 1
        assert col.outcomes == {OUT_TIMEOUT: 2}

    def test_zero_round_deadline(self):
        """deadline == issue_round (a plane-level ``deadline=0``) times
        out at the first sweep at-or-after the issue round."""
        col = collector()
        col.register(issued(0, deadline=0, issue_round=0))
        assert col.expire(round_no=0) == 1
        rec = col.completed[0]
        assert rec.outcome == OUT_TIMEOUT and rec.latency == 0

    def test_one_sweep_pops_every_due_bucket_in_deadline_order(self):
        col = collector()
        col.register(issued(2, deadline=7))
        col.register(issued(0, deadline=3))
        col.register(issued(1, deadline=5))
        col.register(issued(3, deadline=11))
        assert col.expire(round_no=8) == 3
        assert [c.op_id for c in col.completed] == [0, 1, 2]
        assert col.outstanding_count() == 1

    def test_fully_unlinked_bucket_costs_nothing(self):
        col = collector()
        for i in range(4):
            col.register(issued(i, deadline=6))
        for i in range(4):
            col.on_reply(reply(i), round_no=2)
        assert col.expire(round_no=10) == 0
        assert col._wheel == {} and col._wheel_rounds == []

    def test_duplicate_registration_still_rejected(self):
        col = collector()
        col.register(issued(0, deadline=5))
        with pytest.raises(ValueError):
            col.register(issued(0, deadline=7))
        with pytest.raises(ValueError):
            col.register_batch([issued(1, deadline=5), issued(1, deadline=5)])


# ----------------------------------------------------------------------
# histogram bisect (satellite)
# ----------------------------------------------------------------------
class TestHistogramBisect:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        """Edges are inclusive upper bounds: v == edge belongs to edge."""
        hist = dict(latency_histogram([1, 2, 4, 4], bounds=(1, 2, 4)))
        assert hist == {"<=1": 1, "<=2": 1, "<=4": 2, ">4": 0}

    def test_overflow_bucket(self):
        hist = dict(latency_histogram([5, 100], bounds=(1, 2, 4)))
        assert hist[">4"] == 2

    def test_matches_linear_reference_on_random_values(self):
        rng = random.Random(7)
        bounds = (1, 2, 4, 8, 16, 32, 64, 128, 256)
        values = [rng.randrange(0, 400) for _ in range(500)]

        def linear(vals):
            buckets = [0] * (len(bounds) + 1)
            for v in vals:
                for i, edge in enumerate(bounds):
                    if v <= edge:
                        buckets[i] += 1
                        break
                else:
                    buckets[-1] += 1
            return buckets

        assert [c for _, c in latency_histogram(values)] == linear(values)

    def test_empty_bounds_is_one_catch_all(self):
        assert latency_histogram([3, 9], bounds=()) == [("all", 2)]


# ----------------------------------------------------------------------
# bounded-structure overflow policies
# ----------------------------------------------------------------------
class TestOverflowPolicies:
    def _succeed_then_fail(self, col, op_id, origin):
        col.register(issued(op_id, deadline=50, origin=origin))
        col.on_reply(reply(op_id), round_no=2)  # owner == truth: success
        col.register(issued(op_id + 100, deadline=50, origin=origin))
        col.on_reply(reply(op_id + 100, owner=7), round_no=4)  # misroute

    def test_tracked_search_cap_undercounts_never_overcounts(self):
        col = collector(max_tracked_searches=2)
        for i, origin in enumerate((1, 2, 3)):
            self._succeed_then_fail(col, i, origin)
        # the third key was never admitted: its violation goes unseen
        assert col.violations_count == 2
        assert col.tracked_search_overflow == 1

    def test_violation_records_capped_in_streaming_mode(self):
        col = collector(mode=MODE_STREAMING, max_violation_records=1)
        for i, origin in enumerate((1, 2, 3)):
            self._succeed_then_fail(col, i, origin)
        assert col.violations_count == 3  # the counter stays exact
        assert len(col.violations) == 1  # first-K records retained

    def test_violation_records_unbounded_in_list_mode(self):
        col = collector(max_violation_records=1)
        for i, origin in enumerate((1, 2, 3)):
            self._succeed_then_fail(col, i, origin)
        assert col.violations_count == 3
        assert len(col.violations) == 3


# ----------------------------------------------------------------------
# list-mode summary aggregate cache (satellite)
# ----------------------------------------------------------------------
class TestListModeSummaryCache:
    def test_repeated_summary_is_stable_and_invalidates_on_complete(self):
        col = collector()
        for i in range(20):
            col.register(issued(i, deadline=50, kid=9))
            col.on_reply(reply(i, hops=i % 5), round_no=3 + i % 7)
        first = col.summary()
        assert col.summary() == first  # served from the memo
        col.register(issued(99, deadline=120, issue_round=0))
        col.on_reply(reply(99, hops=3), round_no=90)  # new latency tail
        after = col.summary()
        assert after["latency_max"] == 90
        assert after["latency_mean"] > first["latency_mean"]
        assert after["completed"] == first["completed"] + 1


# ----------------------------------------------------------------------
# batched injection == the one-op-at-a-time loop
# ----------------------------------------------------------------------
class TestIssueBatch:
    def _net(self, seed=31):
        net = build_random_network(n=10, seed=seed, incremental=True)
        net.run_until_stable(max_rounds=5000)
        return net, TrafficPlane(net)

    def test_batch_equals_sequential_issue(self):
        a_net, a_plane = self._net()
        b_net, b_plane = self._net()
        kids = [(i * 97) % a_net.space.size for i in range(8)]
        origins = [a_net.peer_ids[i % len(a_net.peer_ids)] for i in range(8)]
        for kid, origin in zip(kids, origins):
            a_plane.issue(OP_LOOKUP, kid, origin)
        b_plane.issue_batch(
            [(OP_LOOKUP, kid, origin, None) for kid, origin in zip(kids, origins)]
        )
        assert a_net.fingerprint() == b_net.fingerprint()
        for r in range(16):
            a_plane.run_round()
            b_plane.run_round()
            assert a_net.fingerprint() == b_net.fingerprint(), f"round {r}"
        assert a_plane.collector.summary() == b_plane.collector.summary()

    def test_dead_origin_in_batch_fails_only_that_op(self):
        net, plane = self._net()
        live = net.peer_ids[0]
        rows = [
            (OP_LOOKUP, 5, live, None),
            (OP_LOOKUP, 6, 999_999_999 % net.space.size, None),  # no such peer
            (OP_LOOKUP, 7, live, None),
        ]
        plane.issue_batch(rows)
        assert plane.collector.outstanding_count() == 2
        assert plane.collector.outcomes == {"origin_dead": 1}
        plane.drain()
        assert plane.collector.completed_count == 3

    def test_batch_respects_drop_filter_via_fallback(self):
        net, plane = self._net()
        net.scheduler.set_drop_filter(lambda env: True)
        plane.issue_batch([(OP_LOOKUP, 5, net.peer_ids[0], None)])
        # dropped at injection: the op never entered the ledger
        assert plane.collector.outcomes == {"origin_dead": 1}
        assert plane.collector.outstanding_count() == 0

    def test_batch_rejects_unknown_ops_and_missing_store(self):
        net, plane = self._net()
        with pytest.raises(ValueError):
            plane.issue_batch([("frobnicate", 5, net.peer_ids[0], None)])
        with pytest.raises(RuntimeError):
            plane.issue_batch([(OP_PUT, 5, net.peer_ids[0], "v0")])

    def test_generator_vector_path_matches_scalar_fallback(self):
        """Above _VECTOR_MIN arrivals the numpy mapping must reproduce
        the pure-bisect mapping draw for draw."""
        from repro.traffic import generator as gen_mod

        net, plane = self._net(seed=47)
        gen = WorkloadGenerator(
            plane, rate=0,  # drive _draw_batch directly
            op_mix=((OP_LOOKUP, 0.5), (OP_PUT, 0.3), (OP_GET, 0.2)),
            popularity="zipf", zipf_s=1.2, key_universe=96, seed=5,
        )
        ids = plane.live_ids()
        rows_vec = gen._draw_batch(200, ids)
        gen2 = WorkloadGenerator(
            plane, rate=0,
            op_mix=((OP_LOOKUP, 0.5), (OP_PUT, 0.3), (OP_GET, 0.2)),
            popularity="zipf", zipf_s=1.2, key_universe=96, seed=5,
        )
        saved = gen_mod._np
        gen_mod._np = None  # force the pure fallback
        try:
            rows_pure = gen2._draw_batch(200, ids)
        finally:
            gen_mod._np = saved
        assert rows_vec == rows_pure
