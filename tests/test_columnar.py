"""Differential kernel tests: columnar engine ≡ incremental ≡ full-scan.

The columnar kernel (flow-indexed inboxes over interned NodeRef ids,
batched dirty-set rule evaluation, bulk per-round delivery) must be
**round-for-round equivalent** to both existing kernels: same
:class:`StabilizationReport`, same ``fingerprint()`` at every boundary,
and same rule-firing counters — across churn, mid-round membership
surgery, partial activation, latency models, drop filters, and whole
scenario campaigns.  These tests drive all three engines over the same
inputs and compare.

The suite also pins the :class:`repro.core.noderef.InternTable`
invariants the columnar layout leans on: one singleton ref per identity
triple, dense ``iid`` assignment, and column/ref consistency.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.core.network import ReChordNetwork
from repro.core.noderef import INTERN, NodeRef, make_ref
from repro.idspace.ring import IdSpace
from repro.netsim.columnar import ColumnarScheduler
from repro.netsim.rng import SeedSequence
from repro.scenarios import make_scenario, run_scenario, scenario_names
from repro.workloads.churn import ChurnSchedule, apply_event
from repro.workloads.initial import (
    build_random_network,
    corrupt_network,
    random_peer_ids,
)

ROOT = SeedSequence(61011)


def build_triple(n: int, seed: int, corrupt: bool = False):
    """The same seeded start under all three kernels."""
    nets = [
        build_random_network(n=n, seed=seed, engine=engine)
        for engine in ("columnar", "incremental", "full")
    ]
    if corrupt:
        for net in nets:
            corrupt_network(net, seed + 1)
    return nets


def assert_equivalent(nets, context: str = "") -> None:
    """Full observable equality across the triple."""
    ref = nets[-1]
    for net in nets[:-1]:
        assert net.fingerprint() == ref.fingerprint(), f"fingerprint diverged {context}"
        assert net.counters().fires == ref.counters().fires, f"counters diverged {context}"


# seeded random starts: mixed sizes, half corrupted with phantom virtual
# refs and garbage marked edges (subset of the incremental suite's grid)
STARTS = [
    (n, seed, corrupt)
    for seed, (n, corrupt) in enumerate(
        [(1, False), (2, True), (4, False), (6, True), (8, False),
         (9, True), (10, False), (11, True), (12, False), (14, True)]
    )
]


class TestColumnarEngineSelection:
    def test_engine_flag_selects_scheduler(self):
        net = ReChordNetwork(engine="columnar")
        assert isinstance(net.scheduler, ColumnarScheduler)
        assert net.engine == "columnar"
        assert net.incremental  # columnar is an activity-tracked kernel

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ReChordNetwork(engine="vectorized")

    def test_engine_wins_over_boolean(self):
        net = ReChordNetwork(incremental=False, engine="columnar")
        assert isinstance(net.scheduler, ColumnarScheduler)


class TestColumnarStabilization:
    @pytest.mark.parametrize("n,seed,corrupt", STARTS)
    def test_seeded_start_same_report_and_fingerprint(self, n, seed, corrupt):
        nets = build_triple(n, seed, corrupt)
        reports = [net.run_until_stable(max_rounds=4000) for net in nets]
        assert reports[0] == reports[1] == reports[2], (
            f"reports diverged at n={n} seed={seed} corrupt={corrupt}"
        )
        assert_equivalent(nets, f"at n={n} seed={seed} corrupt={corrupt}")

    def test_stable_network_matches_ideal(self):
        net = build_random_network(n=10, seed=3, engine="columnar")
        net.run_until_stable(max_rounds=4000)
        assert net.matches_ideal()

    def test_quiescent_network_executes_nobody(self):
        net = build_random_network(n=12, seed=41, engine="columnar")
        net.run_until_stable(max_rounds=4000)
        net.run_round()
        executed, replayed = net.activity_stats()
        assert executed == 0
        assert replayed == len(net.peers)


class TestColumnarLockstep:
    """Round-for-round (not just final-state) equality."""

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_fingerprints_match_every_round(self, seed):
        nets = build_triple(10, seed, corrupt=(seed % 2 == 0))
        for r in range(60):
            for net in nets:
                net.run_round()
            assert_equivalent(nets, f"at round {r}")

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_churn_trajectory_lockstep(self, seed):
        """join → graceful leave → crash → rejoin of the crashed id,
        compared at every boundary (the rejoin revives frozen flows)."""
        nets = build_triple(16, seed)
        rng = ROOT.child("churn", seed=seed).rng()
        new_id = random_peer_ids(1, rng, nets[0].space)[0]
        while new_id in nets[0].peers:
            new_id = random_peer_ids(1, rng, nets[0].space)[0]
        crash_victim = {}
        for r in range(120):
            if r == 20:
                for net in nets:
                    net.join(new_id, net.peer_ids[0])
            elif r == 45:
                victim = nets[0].peer_ids[3]
                for net in nets:
                    net.leave(victim)
            elif r == 70:
                victim = nets[0].peer_ids[5]
                crash_victim["id"] = victim
                for net in nets:
                    net.crash(victim)
            elif r == 90:
                for net in nets:
                    net.join(crash_victim["id"], net.peer_ids[1])
            for net in nets:
                net.run_round()
            assert_equivalent(nets, f"at round {r} (seed={seed})")

    def test_churn_schedule_same_trajectory(self):
        nets = build_triple(10, 5)
        for net in nets:
            net.run_until_stable(max_rounds=4000)
        schedule = ChurnSchedule.random(nets[0], events=4, seed=55)
        for event in schedule:
            reports = []
            for net in nets:
                apply_event(net, event)
                reports.append(net.run_until_stable(max_rounds=4000))
            assert reports[0] == reports[1] == reports[2], f"after {event}"
            assert_equivalent(nets, f"after {event}")

    def test_mid_round_removal_stays_equivalent(self):
        """A peer removed DURING a round after it already emitted: the
        columnar engine must ghost its final outbox for exactly one
        round, then expire it."""
        nets = build_triple(10, 71)
        for net in nets:
            net.run_until_stable(max_rounds=4000)
        victim = nets[0].peer_ids[4]
        for net in nets:
            class Remover:
                def __init__(self, net):
                    self.net = net
                    self.done = False

                def step(self, inbox, ctx):
                    if not self.done:
                        self.done = True
                        self.net._remove_peer(victim)

            # sorts AFTER every peer id: the victim has already executed
            # (and emitted) when it is removed mid-round
            net.scheduler.add_actor(2**70, Remover(net))
        for r in range(40):
            for net in nets:
                net.run_round()
            assert_equivalent(nets, f"at round {r}")

    def test_partial_activation_then_stability(self):
        """Partial rounds force the columnar engine onto the parent
        path; re-entry afterwards must agree with both kernels."""
        nets = build_triple(8, 51)
        for net in nets:
            net.run(5)
        active = set(nets[0].peer_ids[:4])
        for _ in range(3):
            for net in nets:
                net.run_round(active=active)
        assert_equivalent(nets, "after partial activation")
        reports = [net.run_until_stable(max_rounds=4000) for net in nets]
        assert reports[0] == reports[1] == reports[2]
        assert_equivalent(nets, "after re-stabilization")

    def test_latency_model_switch_mid_run(self):
        """Installing a non-unit delivery model exits columnar mode;
        restoring unit delivery re-enters it — equivalence must hold
        through both transitions."""
        nets = build_triple(10, 13)
        for net in nets:
            net.run(10)
        for net in nets:
            net.set_delivery_model({"kind": "constant", "delay": 3})
        for r in range(20):
            for net in nets:
                net.run_round()
            assert_equivalent(nets, f"under constant delay at round {r}")
        for net in nets:
            net.set_delivery_model("unit")
        reports = [net.run_until_stable(max_rounds=4000) for net in nets]
        assert reports[0] == reports[1] == reports[2]
        assert_equivalent(nets, "after returning to unit delivery")

    def test_drop_filter_lockstep(self):
        """A delivery-time drop filter (partition) exits columnar mode;
        lifting it re-enters — compare at every boundary."""
        nets = build_triple(12, 17)
        for net in nets:
            net.run_until_stable(max_rounds=4000)
        side_a = frozenset(nets[0].peer_ids[: len(nets[0].peer_ids) // 2])

        def cut(env):
            return (env.sender in side_a) != (env.target in side_a)

        for net in nets:
            net.scheduler.set_drop_filter(cut)
        for r in range(25):
            for net in nets:
                net.run_round()
            assert_equivalent(nets, f"under partition at round {r}")
        for net in nets:
            net.scheduler.set_drop_filter(None)
        reports = [net.run_until_stable(max_rounds=4000) for net in nets]
        assert reports[0] == reports[1] == reports[2]
        assert_equivalent(nets, "after healing the partition")

    def test_out_of_band_perturbation_detected(self):
        """Direct state edits (caught by the version-counter sweep) must
        re-activate peers under the columnar engine too."""
        nets = build_triple(10, 31)
        for net in nets:
            net.run_until_stable(max_rounds=4000)
        for net in nets:
            victim = net.peers[net.peer_ids[3]]
            foreign = NodeRef.real(net.peer_ids[0])
            victim.state.nodes[victim.state.max_level()].nu.add(foreign)
        reports = [net.run_until_stable(max_rounds=4000) for net in nets]
        assert reports[0] == reports[1] == reports[2]
        assert_equivalent(nets, "after perturbation")

    def test_change_flag_matches_fingerprint_comparison(self):
        net = build_random_network(n=10, seed=4, engine="columnar")
        prev = net.fingerprint()
        for _ in range(80):
            net.run_round()
            cur = net.fingerprint()
            assert net.scheduler.changed_last_round == (cur != prev)
            prev = cur


class TestColumnarScenarios:
    """Whole campaigns (traffic + latency + partitions + corruption)
    through the scenario engine, compared report-for-report."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_named_scenario_equivalent(self, name):
        spec = make_scenario(name, n=12, seed=5)
        col = run_scenario(spec, engine="columnar")
        incr = run_scenario(spec, incremental=True)
        # dataclass equality covers recovery metrics, repair curve, SLO
        # ledger, rule firings and the configuration digest
        assert col == incr, f"columnar diverged under scenario {name!r}"

    def test_scenario_determinism(self):
        spec = make_scenario("churn-storm", n=12, seed=9)
        assert run_scenario(spec, engine="columnar") == run_scenario(
            spec, engine="columnar"
        )


class TestInternTable:
    """The registry invariants the columnar layout depends on."""

    def test_distinct_triples_never_alias(self):
        """Property: interning any grid of distinct identity triples
        yields pairwise-distinct objects with pairwise-distinct iids."""
        space = IdSpace()
        rng = ROOT.child("intern").rng()
        owners = random_peer_ids(32, rng, space)
        refs = [
            make_ref(space, owner, level)
            for owner in owners
            for level in range(0, space.max_level() + 1, 7)
        ]
        seen_iids = {}
        for ref in refs:
            assert ref.iid >= 0, "interned ref must carry a dense id"
            triple = (ref.id, ref.owner, ref.level)
            prev = seen_iids.get(ref.iid)
            assert prev is None or prev == triple, (
                f"iid {ref.iid} aliases {prev} and {triple}"
            )
            seen_iids[ref.iid] = triple

    def test_same_triple_is_singleton(self):
        space = IdSpace()
        a = make_ref(space, 12345, 3)
        b = make_ref(space, 12345, 3)
        assert a is b
        assert NodeRef.real(999) is NodeRef.real(999)

    def test_columns_agree_with_refs(self):
        space = IdSpace()
        ref = make_ref(space, 424242, 5)
        i = ref.iid
        assert INTERN.ids[i] == ref.id
        assert INTERN.owners[i] == ref.owner
        assert INTERN.levels[i] == ref.level
        assert INTERN.ref(i) is ref

    def test_pickle_round_trips_to_the_singleton(self):
        space = IdSpace()
        ref = make_ref(space, 777, 2)
        assert pickle.loads(pickle.dumps(ref)) is ref
        assert copy.deepcopy(ref) is ref

    def test_uninterned_ref_still_compares(self):
        """Direct construction stays legal: equality and hashing do not
        depend on interning."""
        space = IdSpace()
        interned = make_ref(space, 31337, 1)
        loose = NodeRef(interned.id, interned.owner, interned.level)
        assert loose.iid == -1
        assert loose == interned and hash(loose) == hash(interned)
