"""Economical-broadcast extension: equivalence and savings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import RuleConfig
from repro.workloads.initial import build_random_network

ECO = RuleConfig(economical_broadcast=True)


class TestEquivalence:
    @pytest.mark.parametrize("n,seed", [(4, 0), (10, 1), (18, 2)])
    def test_converges_to_same_ideal(self, n, seed):
        net = build_random_network(n=n, seed=seed, config=ECO)
        net.run_until_stable(max_rounds=5000)
        assert net.matches_ideal(), net.ideal_mismatches(limit=3)

    def test_round_counts_match_faithful_mode(self):
        """Suppressing redundant announcements must not slow convergence
        (the receiver would have discarded them anyway)."""
        for n, seed in [(8, 3), (16, 4)]:
            a = build_random_network(n=n, seed=seed)
            b = build_random_network(n=n, seed=seed, config=ECO)
            ra = a.run_until_stable(max_rounds=5000)
            rb = b.run_until_stable(max_rounds=5000)
            assert rb.rounds_to_stable <= ra.rounds_to_stable + 2

    def test_stable_state_is_fixed_point(self):
        net = build_random_network(n=10, seed=5, config=ECO)
        net.run_until_stable(max_rounds=5000)
        fp = net.fingerprint()
        net.run(3)
        assert net.fingerprint() == fp

    def test_churn_still_repairs(self):
        net = build_random_network(n=10, seed=6, config=ECO)
        net.run_until_stable(max_rounds=5000)
        net.crash(net.peer_ids[4])
        net.run_until_stable(max_rounds=5000)
        assert net.matches_ideal()

    @given(n=st.integers(2, 6), seed=st.integers(0, 2000))
    @settings(max_examples=15)
    def test_property_still_self_stabilizing(self, n, seed):
        net = build_random_network(n=n, seed=seed, config=ECO)
        net.run_until_stable(max_rounds=2000)
        assert net.matches_ideal()


class TestSavings:
    def test_steady_state_messages_reduced(self):
        full = build_random_network(n=16, seed=7, record_trace=True)
        full.run_until_stable(max_rounds=5000)
        full.run(2)
        eco = build_random_network(n=16, seed=7, config=ECO, record_trace=True)
        eco.run_until_stable(max_rounds=5000)
        eco.run(2)
        assert eco.trace.messages_series()[-1] < full.trace.messages_series()[-1]

    def test_experiment_module(self):
        from repro.experiments.economy import format_economy, run_economy

        result = run_economy(sizes=(8,), seeds=2)
        row = result[8]
        assert row["steady_saving"].mean > 0.0
        assert "economical" in format_economy(result)
