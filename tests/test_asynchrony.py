"""Fair partial activation and convergence-time routability."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.asynchrony import (
    format_asynchrony,
    measure_one,
    rounds_to_ideal_under_activation,
    run_asynchrony,
)
from repro.experiments.usability import format_usability, run_usability
from repro.workloads.initial import build_random_network


class TestPartialActivation:
    def test_scheduler_skips_inactive(self):
        net = build_random_network(n=6, seed=0)
        before = net.fingerprint()
        net.run_round(active=set())  # nobody steps
        assert net.fingerprint() == before

    def test_sleeping_peer_keeps_inbox(self):
        net = build_random_network(n=4, seed=1)
        sleeper = net.peer_ids[0]
        others = set(net.peer_ids) - {sleeper}
        for _ in range(3):
            net.run_round(active=others)
        # messages addressed to the sleeper piled up
        pending_for_sleeper = [
            env for env in net.scheduler.all_pending() if env.target == sleeper
        ]
        assert pending_for_sleeper

    def test_full_activation_matches_default(self):
        a = build_random_network(n=8, seed=2)
        b = build_random_network(n=8, seed=2)
        for _ in range(10):
            a.run_round()
            b.run_round(active=set(b.peer_ids))
            assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("p", [0.7, 0.4])
    def test_converges_under_fair_activation(self, p):
        rounds = rounds_to_ideal_under_activation(10, seed=3, activation=p)
        sync = rounds_to_ideal_under_activation(10, seed=3, activation=1.0)
        assert rounds >= sync
        # stretch roughly bounded by a few multiples of 1/p
        assert rounds <= sync * (4 / p)

    def test_rejects_zero_activation(self):
        with pytest.raises(ValueError):
            rounds_to_ideal_under_activation(4, seed=0, activation=0.0)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=8)
    def test_property_partial_activation_still_stabilizes(self, seed):
        rounds = rounds_to_ideal_under_activation(6, seed=seed, activation=0.5)
        assert rounds >= 1

    def test_sweep_and_format(self):
        result = run_asynchrony(sizes=(6,), seeds=2)
        row = result[6]
        assert row["rounds_p40"].mean >= row["rounds_p100"].mean
        assert "activation" in format_asynchrony(result)

    def test_measure_one_stretch_columns(self):
        row = measure_one(6, seed=5)
        assert row["stretch_p40"] >= 1.0 or row["rounds_p100"] <= 2


class TestUsability:
    def test_profile_shape(self):
        profile = run_usability(n=12, seed=7, samples=20)
        assert profile.series[-1] == 1.0  # stable overlay fully routable
        assert profile.first_full_routability() <= profile.rounds_to_stable
        assert len(profile.series) == profile.rounds_to_stable + 2

    def test_routable_before_stable(self):
        """The practical payoff of 'almost stable': lookups work before
        the configuration fixpoint."""
        profile = run_usability(n=20, seed=8, samples=25)
        assert profile.first_full_routability() < profile.rounds_to_stable

    def test_format(self):
        profile = run_usability(n=10, seed=9, samples=10)
        out = format_usability(profile)
        assert "Routability" in out and "stable" in out
