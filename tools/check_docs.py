#!/usr/bin/env python
"""Offline link checker for the documentation plane.

Validates every Markdown link in ``README.md`` and ``docs/*.md``:

* relative links must point at files that exist in the repository;
* ``#fragment`` parts must match a heading anchor in the target file
  (GitHub slug rules: lowercase, punctuation stripped, spaces to
  dashes);
* external ``http(s)`` links are listed but not fetched (CI has no
  business depending on the network).

Exits non-zero on the first class of broken links, printing all of
them.  Used by the CI docs job and by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: markdown headings (``# ...`` at line start, fenced blocks excluded)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def doc_files() -> List[Path]:
    """The documentation set: README plus everything under docs/."""
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # strip links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> Set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def extract_links(path: Path) -> List[str]:
    """All inline link targets of a markdown file (fences excluded)."""
    links: List[str] = []
    in_fence = False
    for line in path.read_text().splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK_RE.findall(line))
    return links


def check_file(path: Path) -> Tuple[List[str], List[str]]:
    """``(broken, external)`` links of one documentation file."""
    broken: List[str] = []
    external: List[str] = []
    for link in extract_links(path):
        if link.startswith(("http://", "https://", "mailto:")):
            external.append(link)
            continue
        target, _, fragment = link.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(ROOT)}: missing file {link}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown files: not checked
            if fragment not in heading_anchors(resolved):
                broken.append(f"{path.relative_to(ROOT)}: missing anchor {link}")
    return broken, external


def main() -> int:
    files = doc_files()
    if not files:
        print("FAIL: no documentation files found")
        return 1
    all_broken: List[str] = []
    total_links = 0
    for path in files:
        broken, external = check_file(path)
        total_links += len(extract_links(path))
        all_broken.extend(broken)
        for url in external:
            print(f"  (external, unchecked) {path.relative_to(ROOT)}: {url}")
    if all_broken:
        for problem in all_broken:
            print(f"FAIL: {problem}")
        return 1
    print(f"OK: {total_links} links across {len(files)} files, none broken")
    return 0


if __name__ == "__main__":
    sys.exit(main())
