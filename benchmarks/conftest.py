"""Shared benchmark helpers.

Every benchmark module regenerates one table/figure of the paper: the
table itself is computed once (unbenchmarked), printed, and written to
``benchmarks/results/<name>.txt``; the *timed* portion is a single
representative unit of work so pytest-benchmark reports a meaningful,
stable number.

Sweep breadth is controlled by the ``RECHORD_BENCH_SEEDS`` environment
variable (default 3; the paper uses 30 — use the CLI, e.g.
``python -m repro fig5 --seeds 30``, for full-fidelity tables).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: repetitions per sweep cell used inside benchmarks
BENCH_SEEDS = int(os.environ.get("RECHORD_BENCH_SEEDS", "3"))

#: reduced size ladder for paper-figure sweeps inside benchmarks
BENCH_FIG_SIZES = (5, 15, 25, 45, 65)


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}.txt]")
