#!/usr/bin/env python
"""CI smoke benchmark: in-band traffic throughput under churn at n=256.

Builds a stable 256-peer network, attaches the traffic plane with a
mixed lookup/get/put workload, hits it with a small churn burst (join +
crash) mid-run, and drains.  Two classes of checks against the
checked-in baseline (``benchmarks/baseline_traffic.json``):

* **machine-independent exact checks** — the run is fully seeded, so
  the delivered-op count, the outcome census and the violation count
  must match the baseline exactly (any drift means traffic-plane or
  kernel behavior changed);
* **throughput floor** — completed ops/sec must stay within
  ``allowed_regression`` (default 3x) of the baseline.

Usage::

    PYTHONPATH=src python benchmarks/smoke_traffic.py            # gate
    PYTHONPATH=src python benchmarks/smoke_traffic.py --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_traffic.json"
N = 256
SEED = 2011
ROUNDS = 40


def measure() -> dict:
    from repro.dht.lookup import ReChordRouter
    from repro.dht.storage import KeyValueStore
    from repro.experiments.scaling import build_ideal_network
    from repro.netsim.rng import SeedSequence
    from repro.traffic import TrafficPlane, WorkloadGenerator
    from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT
    from repro.workloads.initial import random_peer_ids

    seq = SeedSequence(SEED).child("smoke-traffic", n=N)
    net = build_ideal_network(N, seq.child("build").seed(), incremental=True)
    store = KeyValueStore(ReChordRouter(net))
    plane = TrafficPlane(net, store=store)
    WorkloadGenerator(
        plane,
        rate=4.0,
        op_mix=((OP_LOOKUP, 0.6), (OP_GET, 0.2), (OP_PUT, 0.2)),
        key_universe=128,
        popularity="zipf",
        deadline=40,
        seed=seq.child("workload").seed(),
    )
    rng = seq.child("churn").rng()
    t0 = time.perf_counter()
    for round_no in range(ROUNDS):
        if round_no == 8:
            join_id = random_peer_ids(1, rng, net.space)[0]
            while join_id in net.peers:
                join_id = random_peer_ids(1, rng, net.space)[0]
            net.join(join_id, rng.choice(net.peer_ids))
        if round_no == 16:
            net.crash(rng.choice(net.peer_ids))
        plane.run_round()
    plane.generator.active = False
    plane.drain()
    elapsed = time.perf_counter() - t0
    summary = plane.collector.summary()
    return {
        "n": N,
        "rounds": ROUNDS,
        "completed": summary["completed"],
        "outcomes": summary["outcomes"],
        "violations": summary["violations"],
        "success_rate": summary["success_rate"],
        "ops_per_sec": round(summary["completed"] / elapsed, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline ops/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    result = measure()
    print("measured:", json.dumps(result))

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))

    # machine-independent exact checks: seeded run, exact delivery census
    for key in ("completed", "outcomes", "violations"):
        if result[key] != baseline[key]:
            print(
                f"FAIL: {key} = {result[key]!r}, baseline says {baseline[key]!r} "
                "(traffic-plane behavior changed)"
            )
            return 1
    floor = baseline["ops_per_sec"] / args.allowed_regression
    if result["ops_per_sec"] < floor:
        print(
            f"FAIL: {result['ops_per_sec']} ops/sec is more than "
            f"{args.allowed_regression}x below baseline {baseline['ops_per_sec']}"
        )
        return 1
    print(
        f"OK: {result['ops_per_sec']} ops/sec "
        f"(floor {floor:.2f}, baseline {baseline['ops_per_sec']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
