"""Theorem 4.1 — join recovery (E5).

Regenerates the churn-recovery table and benchmarks the join path in
isolation: stabilize at n = 32, join one peer, re-stabilize.
"""

from __future__ import annotations

import random

from conftest import BENCH_SEEDS, emit

from repro.experiments.join_leave import format_join_leave, run_join_leave
from repro.workloads.initial import build_random_network, random_peer_ids

SIZES = (8, 16, 32, 64)


def join_unit(n: int, seed: int) -> int:
    rng = random.Random(seed)
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=20_000)
    new_id = random_peer_ids(1, rng, net.space)[0]
    while new_id in net.peers:
        new_id = random_peer_ids(1, rng, net.space)[0]
    net.join(new_id, rng.choice(net.peer_ids))
    return net.run_until_stable(max_rounds=20_000).rounds_to_stable


def test_theorem41_join(benchmark):
    result = run_join_leave(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("theorem41_join", format_join_leave(result))
    # join cost must grow slower than linearly in n (polylog claim)
    first, last = SIZES[0], SIZES[-1]
    ratio = result[last]["join_rounds"].mean / max(1.0, result[first]["join_rounds"].mean)
    assert ratio < (last / first), "join recovery must scale sublinearly"

    benchmark.pedantic(join_unit, args=(32, 2011), rounds=3, iterations=1)
