"""Figure 6 — rounds to stable / almost-stable state (E2).

Regenerates the Fig. 6 series and benchmarks one tracked stabilization
at n = 45 (the almost-stable detector adds per-round ideal comparisons,
so it is timed separately from Fig. 5's plain run).
"""

from __future__ import annotations

from conftest import BENCH_FIG_SIZES, BENCH_SEEDS, emit

from repro.experiments.fig6 import format_fig6, measure_one, run_fig6


def test_fig6_series(benchmark):
    result = run_fig6(sizes=BENCH_FIG_SIZES, seeds=BENCH_SEEDS)
    emit("fig6", format_fig6(result))
    for n in result:
        row = result[n]
        assert row["rounds_almost"].mean <= row["rounds_stable"].mean
    # growth stays far below the O(n log n) bound: sublinear-to-linear
    ns = sorted(result)
    first, last = ns[0], ns[-1]
    growth = result[last]["rounds_stable"].mean / max(1.0, result[first]["rounds_stable"].mean)
    assert growth <= (last / first), "rounds must grow at most linearly in n"

    benchmark.pedantic(measure_one, args=(45, 2011), rounds=3, iterations=1)
