"""Routability during convergence (E16).

Regenerates the routability profile and benchmarks one instrumented run
(per-round lookup sampling on top of stabilization).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.usability import format_usability, run_usability


def test_usability_profile(benchmark):
    profile = run_usability(n=24, samples=30)
    emit("usability", format_usability(profile))
    assert profile.series[-1] == 1.0
    # lookups work before the configuration fixpoint
    assert profile.first_full_routability() <= profile.rounds_to_stable

    benchmark.pedantic(
        run_usability, kwargs={"n": 16, "seed": 1, "samples": 20}, rounds=3, iterations=1
    )
