"""E12 — message complexity over time.

Regenerates the per-round message profile and benchmarks one traced
stabilization (tracing is O(1)/round, so this doubles as a regression
guard on the tracing overhead).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.messages import format_messages, run_messages


def test_message_complexity(benchmark):
    profile = run_messages(n=32)
    emit("message_complexity", format_messages(profile))
    assert profile.peak > 0
    # messages ramp up from the sparse initial graph toward the steady
    # flow; the first round is never the peak
    assert profile.series[0] < profile.peak
    assert profile.steady_rate > 0

    benchmark.pedantic(run_messages, kwargs={"n": 24}, rounds=3, iterations=1)
