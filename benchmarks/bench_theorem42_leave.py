"""Theorem 4.2 — leave/crash recovery (E6).

The recovery table is shared with bench_theorem41_join (one sweep
regenerates both theorems' columns); this module asserts the
leave-specific shapes and benchmarks the crash-repair path.
"""

from __future__ import annotations

import random

from conftest import BENCH_SEEDS, emit

from repro.experiments.join_leave import format_join_leave, run_join_leave
from repro.workloads.initial import build_random_network

SIZES = (8, 16, 32, 64)


def crash_unit(n: int, seed: int) -> int:
    rng = random.Random(seed)
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=20_000)
    net.crash(rng.choice(net.peer_ids))
    return net.run_until_stable(max_rounds=20_000).rounds_to_stable


def test_theorem42_leave(benchmark):
    result = run_join_leave(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("theorem42_leave", format_join_leave(result))
    for n in SIZES:
        row = result[n]
        # leaves are cheaper than joins on average (O(log n) vs O(log^2 n))
        assert row["leave_rounds"].mean <= row["join_rounds"].mean + 2
    first, last = SIZES[0], SIZES[-1]
    ratio = result[last]["leave_rounds"].mean / max(1.0, result[first]["leave_rounds"].mean)
    assert ratio < (last / first), "leave recovery must scale sublinearly"

    benchmark.pedantic(crash_unit, args=(32, 2011), rounds=3, iterations=1)
