#!/usr/bin/env python
"""CI smoke benchmark: post-churn engine throughput at n=256.

Joins one peer into an already-stable 256-peer network (built directly
in its stable topology, see ``repro.experiments.scaling``) and measures
the incremental kernel's re-stabilization throughput in rounds/sec.
Fails (exit 1) if throughput regresses more than ``allowed_regression``
(default 3x) below the checked-in baseline.

Usage::

    PYTHONPATH=src python benchmarks/smoke_scaling.py            # gate
    PYTHONPATH=src python benchmarks/smoke_scaling.py --update   # re-baseline

The baseline lives in ``benchmarks/baseline_engine.json`` together with
the machine-independent invariants: the re-stabilization round count is
checked exactly, the executed-peer fraction within 1.5x (replay
effectiveness), and rounds/sec within the regression factor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_engine.json"
N = 256
SEED = 2011


def measure() -> dict:
    from repro.experiments.scaling import _post_churn_restabilize, build_ideal_network
    from repro.netsim.rng import SeedSequence
    from repro.workloads.initial import random_peer_ids

    seq = SeedSequence(SEED).child("smoke", n=N)
    net = build_ideal_network(N, seq.child("build").seed(), incremental=True)
    rng = seq.child("join").rng()
    join_id = random_peer_ids(1, rng, net.space)[0]
    while join_id in net.peers:
        join_id = random_peer_ids(1, rng, net.space)[0]
    gateway = rng.choice(net.peer_ids)
    report, seconds, frac = _post_churn_restabilize(net, join_id, gateway, 2_000)
    return {
        "n": N,
        "rounds": report.rounds_executed,
        "rounds_per_sec": round(report.rounds_executed / seconds, 2),
        "executed_fraction": round(frac, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline rounds/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    result = measure()
    print("measured:", json.dumps(result))

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))

    # machine-independent exact checks: the kernel must do the same work
    if result["rounds"] != baseline["rounds"]:
        print(
            f"FAIL: re-stabilization took {result['rounds']} rounds, "
            f"baseline says {baseline['rounds']} (kernel behavior changed)"
        )
        return 1
    # replay effectiveness: a kernel regression that re-executes far more
    # peers per round can hide behind fast CI hardware, so gate the
    # deterministic executed fraction too (small headroom for wake-policy
    # tweaks; a jump toward 1.0 means replay is broken)
    if result["executed_fraction"] > baseline["executed_fraction"] * 1.5:
        print(
            f"FAIL: executed fraction {result['executed_fraction']} is more than "
            f"1.5x baseline {baseline['executed_fraction']} (replay regressed)"
        )
        return 1
    floor = baseline["rounds_per_sec"] / args.allowed_regression
    if result["rounds_per_sec"] < floor:
        print(
            f"FAIL: {result['rounds_per_sec']} rounds/sec is more than "
            f"{args.allowed_regression}x below baseline {baseline['rounds_per_sec']}"
        )
        return 1
    print(
        f"OK: {result['rounds_per_sec']} rounds/sec "
        f"(floor {floor:.2f}, baseline {baseline['rounds_per_sec']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
