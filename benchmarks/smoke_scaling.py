#!/usr/bin/env python
"""CI smoke benchmark: post-churn engine throughput gates.

Three gates, each joining one peer into an already-stable network
(built directly in its stable topology, see
``repro.experiments.scaling``) and measuring re-stabilization
throughput in rounds/sec:

* ``incremental`` at n=256 — the historical dirty-set kernel gate;
* ``columnar`` at n=4096 — the large-N kernel the columnar engine
  exists for (the legacy full-scan kernel is not even practical at this
  size; the ideal-state build dominates the gate's wall-clock);
* ``columnar_batched`` at n=4096 — the same workload under the batched
  rule backend (``rule_backend="batched"``, see
  ``repro.core.rules_batched``).

Fails (exit 1) if throughput regresses more than ``allowed_regression``
(default 3x) below the checked-in baseline, if the re-stabilization
round count deviates at all (the kernels are deterministic), or if the
executed-peer fraction grows beyond 1.5x baseline (replay/dirty-set
effectiveness).  When both n=4096 gates run, two cross-checks bind the
batched backend to the scalar one: the round counts must match exactly
(the backends are observationally equivalent), and the batched gate's
throughput must beat the scalar gate's by at least
``BATCHED_SPEEDUP_FLOOR`` — a same-run ratio, so it holds on any
machine regardless of absolute speed.

Usage::

    PYTHONPATH=src python benchmarks/smoke_scaling.py              # both gates
    PYTHONPATH=src python benchmarks/smoke_scaling.py --quick      # n=256 only
    PYTHONPATH=src python benchmarks/smoke_scaling.py --update     # re-baseline

The baselines live in ``benchmarks/baseline_engine.json``, one entry
per gate keyed by engine name.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_engine.json"
SEED = 2011

#: the gates: engine name -> (n, build kwargs)
GATES = {
    "incremental": {"n": 256, "engine_kwargs": {"incremental": True}},
    "columnar": {"n": 4096, "engine_kwargs": {"engine": "columnar"}},
    "columnar_batched": {
        "n": 4096,
        "engine_kwargs": {"engine": "columnar", "rule_backend": "batched"},
    },
}

#: minimum same-run throughput ratio of the columnar_batched gate over
#: the scalar columnar gate.  The measured speedup on the n=4096
#: post-churn workload is ~1.13x (the dirty set is genuine novel work —
#: every round drains a standing message cycle — so the batched
#: backend's win is a constant factor on rule execution, bounded by the
#: kernel's delivery machinery); the floor leaves noise headroom below
#: that.  Machine-independent because both legs run back-to-back in
#: the same process.
BATCHED_SPEEDUP_FLOOR = 1.05


def measure(gate: str) -> dict:
    from repro.experiments.scaling import _post_churn_restabilize, build_ideal_network
    from repro.netsim.rng import SeedSequence
    from repro.workloads.initial import random_peer_ids

    spec = GATES[gate]
    n = spec["n"]
    seq = SeedSequence(SEED).child("smoke", n=n)
    net = build_ideal_network(n, seq.child("build").seed(), **spec["engine_kwargs"])
    rng = seq.child("join").rng()
    join_id = random_peer_ids(1, rng, net.space)[0]
    while join_id in net.peers:
        join_id = random_peer_ids(1, rng, net.space)[0]
    gateway = rng.choice(net.peer_ids)
    report, seconds, frac = _post_churn_restabilize(net, join_id, gateway, 2_000)
    return {
        "n": n,
        "rounds": report.rounds_executed,
        "rounds_per_sec": round(report.rounds_executed / seconds, 2),
        "executed_fraction": round(frac, 4),
    }


def check(gate: str, result: dict, baseline: dict, allowed_regression: float) -> bool:
    """One gate's verdict; prints the reason on failure."""
    # machine-independent exact check: the kernel must do the same work
    if result["rounds"] != baseline["rounds"]:
        print(
            f"FAIL[{gate}]: re-stabilization took {result['rounds']} rounds, "
            f"baseline says {baseline['rounds']} (kernel behavior changed)"
        )
        return False
    # replay/dirty-set effectiveness: a kernel regression that re-executes
    # far more peers per round can hide behind fast CI hardware, so gate
    # the deterministic executed fraction too (small headroom for
    # wake-policy tweaks; a jump toward 1.0 means tracking is broken)
    if result["executed_fraction"] > baseline["executed_fraction"] * 1.5:
        print(
            f"FAIL[{gate}]: executed fraction {result['executed_fraction']} is more "
            f"than 1.5x baseline {baseline['executed_fraction']} (tracking regressed)"
        )
        return False
    floor = baseline["rounds_per_sec"] / allowed_regression
    if result["rounds_per_sec"] < floor:
        print(
            f"FAIL[{gate}]: {result['rounds_per_sec']} rounds/sec is more than "
            f"{allowed_regression}x below baseline {baseline['rounds_per_sec']}"
        )
        return False
    print(
        f"OK[{gate}]: {result['rounds_per_sec']} rounds/sec "
        f"(floor {floor:.2f}, baseline {baseline['rounds_per_sec']})"
    )
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--quick", action="store_true", help="run only the n=256 incremental gate"
    )
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline rounds/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    gates = ["incremental"] if args.quick else list(GATES)
    results = {}
    for gate in gates:
        results[gate] = measure(gate)
        print(f"measured[{gate}]:", json.dumps(results[gate]))

    baselines = json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    if "rounds" in baselines:  # pre-columnar flat layout (n=256 incremental)
        baselines = {"incremental": baselines}

    if args.update or not baselines:
        baselines.update(results)
        BASELINE_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    ok = True
    for gate in gates:
        if gate not in baselines:
            print(f"FAIL[{gate}]: no baseline entry (run with --update)")
            ok = False
            continue
        print(f"baseline[{gate}]:", json.dumps(baselines[gate]))
        ok = check(gate, results[gate], baselines[gate], args.allowed_regression) and ok

    # same-run cross-checks binding the batched backend to the scalar
    # one: identical work, and a machine-independent speedup floor
    if "columnar" in results and "columnar_batched" in results:
        scalar, batched = results["columnar"], results["columnar_batched"]
        if batched["rounds"] != scalar["rounds"]:
            print(
                f"FAIL[columnar_batched]: {batched['rounds']} rounds vs the scalar "
                f"gate's {scalar['rounds']} (the backends diverged)"
            )
            ok = False
        ratio = batched["rounds_per_sec"] / scalar["rounds_per_sec"]
        if ratio < BATCHED_SPEEDUP_FLOOR:
            print(
                f"FAIL[columnar_batched]: same-run speedup {ratio:.2f}x over the "
                f"scalar columnar gate is below the {BATCHED_SPEEDUP_FLOOR}x floor"
            )
            ok = False
        else:
            print(
                f"OK[columnar_batched]: same-run speedup {ratio:.2f}x over scalar "
                f"(floor {BATCHED_SPEEDUP_FLOOR}x)"
            )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
