"""Figure 5 — edges and nodes at stabilization (E1).

Regenerates the paper's Fig. 5 series (normal edges, connection edges,
virtual nodes vs. n) and benchmarks the underlying unit of work: one
full stabilization at n = 45.
"""

from __future__ import annotations

from conftest import BENCH_FIG_SIZES, BENCH_SEEDS, emit

from repro.experiments.fig5 import format_fig5, measure_one, run_fig5


def test_fig5_series(benchmark):
    result = run_fig5(sizes=BENCH_FIG_SIZES, seeds=BENCH_SEEDS)
    emit("fig5", format_fig5(result))
    # sanity: the paper's qualitative shapes
    ns = sorted(result)
    virtuals = [result[n]["virtual_nodes"].mean for n in ns]
    assert all(a < b for a, b in zip(virtuals, virtuals[1:])), "virtual nodes must grow"
    conn = [result[n]["connection_edges"].mean for n in ns]
    normal = [result[n]["normal_edges"].mean for n in ns]
    # connection edges overtake normal edges as n grows (paper Fig. 5)
    assert conn[-1] / normal[-1] > conn[0] / normal[0]

    benchmark.pedantic(measure_one, args=(45, 2011), rounds=3, iterations=1)
