"""Figure 7 — total edges vs. total nodes in the final graph (E3)."""

from __future__ import annotations

from conftest import BENCH_FIG_SIZES, BENCH_SEEDS, emit

from repro.experiments.fig5 import measure_one
from repro.experiments.fig7 import format_fig7, run_fig7


def test_fig7_scatter(benchmark):
    result = run_fig7(sizes=BENCH_FIG_SIZES, seeds=BENCH_SEEDS)
    emit("fig7", format_fig7(result))
    # the paper: total edges grow at a rate comparable to total nodes
    assert 2.0 <= result.slope <= 20.0
    assert result.edges_per_node() >= 2.0

    benchmark.pedantic(measure_one, args=(25, 7), rounds=3, iterations=1)
