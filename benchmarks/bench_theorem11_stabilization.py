"""Theorem 1.1 — stabilization scaling (E4).

Regenerates the scaling table (rounds vs. n with normalized columns)
and benchmarks one n = 64 stabilization.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.experiments.scaling import format_scaling, measure_one, run_scaling

SIZES = (8, 16, 32, 64)


def test_theorem11_scaling(benchmark):
    result = run_scaling(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("theorem11_scaling", format_scaling(result))
    # the O(n log n)-normalized rounds must fall as n grows (the bound
    # is loose — the paper's own observation)
    norm = [result[n]["rounds_over_nlogn"].mean for n in SIZES]
    assert norm[-1] < norm[0]

    benchmark.pedantic(measure_one, args=(64, 2011), rounds=3, iterations=1)
