"""E10 — rule ablations, plus the scalar-vs-batched per-rule profile.

Regenerates the ablation table and benchmarks the full-rule
configuration against the cheapest ablation (no_overlap) at n = 32 —
rule 2 is a shortcut whose removal slows convergence, visible directly
in the two timings.

The second test profiles the same seeded stabilization under both rule
backends with telemetry attached: the per-phase timers (``rule.*`` /
``peer.*`` labels are identical between the scalar pipeline and the
batched phase sweeps) land side by side in
``benchmarks/results/rule_backend_profile.txt``, and the two runs'
censuses must be identical — the timing table is only meaningful if the
backends did exactly the same work.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.core.rules import RuleConfig
from repro.experiments.ablation import format_ablation, run_ablation
from repro.workloads.initial import build_random_network


def stabilize_with(config: RuleConfig) -> int:
    net = build_random_network(n=32, seed=2011, config=config)
    return net.run_until_stable(max_rounds=20_000).rounds_to_stable


def test_ablation_rules(benchmark):
    rows = run_ablation(n=32, seeds=BENCH_SEEDS, budget_rounds=3000)
    emit("ablation_rules", format_ablation(rows))
    by_name = {r.variant: r for r in rows}
    assert by_name["full"].ideal_fraction == 1.0
    assert by_name["no_ring"].ideal_fraction == 0.0  # list, not ring
    assert by_name["no_ring"].chord_coverage.mean < 1.0
    assert by_name["no_overlap"].rounds.mean >= by_name["full"].rounds.mean

    benchmark.pedantic(stabilize_with, args=(RuleConfig(),), rounds=3, iterations=1)


def _profile_backend(backend: str, n: int = 256, seed: int = 2011):
    net = build_random_network(n=n, seed=seed, rule_backend=backend)
    net.enable_telemetry()
    report = net.run_until_stable(max_rounds=20_000)
    phases = {
        phase: (seconds, calls)
        for phase, seconds, calls in net.telemetry.phase_table()
        if phase.startswith(("rule.", "peer."))
    }
    return report, net.telemetry_census(), phases


def test_rule_backend_profile(benchmark):
    ra, census_a, scalar = _profile_backend("scalar")
    rb, census_b, batched = _profile_backend("batched")
    assert ra == rb, "backends diverged (report)"
    assert census_a == census_b, "backends diverged (census)"

    lines = [
        "Per-rule wall-clock: scalar pipeline vs. batched phase sweeps",
        f"(n=256 seed=2011, {ra.rounds_executed} rounds, identical censuses)",
        "",
        f"{'phase':<24} {'scalar s':>10} {'batched s':>10} {'speedup':>8} {'calls':>8}",
    ]
    for phase in sorted(set(scalar) | set(batched)):
        s_sec, s_calls = scalar.get(phase, (0.0, 0))
        b_sec, _ = batched.get(phase, (0.0, 0))
        speedup = f"{s_sec / b_sec:.2f}x" if b_sec > 0 else "n/a"
        lines.append(
            f"{phase:<24} {s_sec:>10.4f} {b_sec:>10.4f} {speedup:>8} {s_calls:>8}"
        )
    total_s = sum(v[0] for v in scalar.values())
    total_b = sum(v[0] for v in batched.values())
    lines.append("")
    lines.append(
        f"{'total rule time':<24} {total_s:>10.4f} {total_b:>10.4f} "
        f"{total_s / total_b:>7.2f}x" if total_b > 0 else "total n/a"
    )
    emit("rule_backend_profile", "\n".join(lines))

    def run_batched() -> int:
        net = build_random_network(n=256, seed=2011, rule_backend="batched")
        return net.run_until_stable(max_rounds=20_000).rounds_to_stable

    benchmark.pedantic(run_batched, rounds=3, iterations=1)
