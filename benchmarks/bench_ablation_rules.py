"""E10 — rule ablations.

Regenerates the ablation table and benchmarks the full-rule
configuration against the cheapest ablation (no_overlap) at n = 32 —
rule 2 is a shortcut whose removal slows convergence, visible directly
in the two timings.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.core.rules import RuleConfig
from repro.experiments.ablation import format_ablation, run_ablation
from repro.workloads.initial import build_random_network


def stabilize_with(config: RuleConfig) -> int:
    net = build_random_network(n=32, seed=2011, config=config)
    return net.run_until_stable(max_rounds=20_000).rounds_to_stable


def test_ablation_rules(benchmark):
    rows = run_ablation(n=32, seeds=BENCH_SEEDS, budget_rounds=3000)
    emit("ablation_rules", format_ablation(rows))
    by_name = {r.variant: r for r in rows}
    assert by_name["full"].ideal_fraction == 1.0
    assert by_name["no_ring"].ideal_fraction == 0.0  # list, not ring
    assert by_name["no_ring"].chord_coverage.mean < 1.0
    assert by_name["no_overlap"].rounds.mean >= by_name["full"].rounds.mean

    benchmark.pedantic(stabilize_with, args=(RuleConfig(),), rounds=3, iterations=1)
