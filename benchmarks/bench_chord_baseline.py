"""E8 — classic Chord vs Re-Chord self-stabilization.

Regenerates the recovery-rate table (two-ring and random starts) and
benchmarks classic Chord's maintenance throughput (rounds of
stabilize/notify/fix_fingers on a correct 32-peer ring).
"""

from __future__ import annotations

import random

from conftest import BENCH_SEEDS, emit

from repro.chord.network import ChordNetwork
from repro.experiments.baseline import format_baseline, run_baseline
from repro.idspace.ring import IdSpace
from repro.workloads.initial import random_peer_ids

SIZES = (8, 16, 32)


def test_chord_vs_rechord(benchmark):
    result = run_baseline(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("chord_baseline", format_baseline(result))
    for n in SIZES:
        row = result[n]
        assert row["chord_tworing_recovered"].mean == 0.0
        assert row["rechord_tworing_recovered"].mean == 1.0
        assert row["rechord_random_recovered"].mean == 1.0

    space = IdSpace()
    ids = random_peer_ids(32, random.Random(1), space)
    net = ChordNetwork.perfect_ring(ids, space, fingers_per_round=2)

    def maintenance_rounds():
        net.run(10)

    benchmark(maintenance_rounds)
