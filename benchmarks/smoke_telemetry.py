#!/usr/bin/env python
"""CI smoke gate: the telemetry plane's census and overhead contract.

Runs the ``flash-crowd`` campaign at n=32 on the columnar kernel with a
telemetry recorder attached and checks three classes of properties
against ``benchmarks/baseline_telemetry.json``:

* **machine-independent exact checks** — the counter census is a pure
  function of the seeded run: rounds, messages sent, drop-filter hits,
  the envelope census by payload type, the per-rule firing census, the
  kernel execute/replay split and the per-window drop totals must all
  match the baseline exactly (any drift means instrumentation leaked
  into behavior, or kernel/scenario behavior changed);
* **zero-overhead contract** — the same campaign run *without*
  telemetry must produce a comparison-equal report (identical
  config digest included): observation must never gate behavior;
* **throughput floor** — telemetry-*disabled* campaign rounds/sec must
  stay within ``allowed_regression`` (default 3x) of the baseline, so
  the instrumentation points cannot quietly tax the disabled path.

Usage::

    PYTHONPATH=src python benchmarks/smoke_telemetry.py            # gate
    PYTHONPATH=src python benchmarks/smoke_telemetry.py --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_telemetry.json"
SCENARIO = "flash-crowd"
N = 32
SEED = 2011
ENGINE = "columnar"


def measure() -> dict:
    from repro.scenarios import make_scenario, run_scenario
    from repro.telemetry import TelemetryRecorder

    spec = make_scenario(SCENARIO, n=N, seed=SEED)
    recorder = TelemetryRecorder()
    observed = run_scenario(spec, engine=ENGINE, telemetry=recorder)

    # the same campaign without telemetry: behavior must be identical,
    # and its wall clock is the one the throughput floor guards (the
    # disabled path is the one every other benchmark pays for)
    t0 = time.perf_counter()
    plain = run_scenario(spec, engine=ENGINE)
    elapsed = time.perf_counter() - t0

    census = recorder.census()
    return {
        "scenario": SCENARIO,
        "n": N,
        "seed": SEED,
        "engine": ENGINE,
        "rounds": census["rounds"],
        "sent": census["sent"],
        "dropped": census["dropped"],
        "messages": census["messages"],
        "rules": census["rules"],
        "kernel": recorder.kernel_stats(),
        "dropped_by_window": [list(w) for w in observed.dropped_by_window],
        "traces": len(recorder.traces),
        "config_digest": observed.config_digest,
        "telemetry_is_free": plain == observed,
        "rounds_per_sec": round(plain.rounds_total / elapsed, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline rounds/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    result = measure()
    print("measured:", json.dumps(result))

    if not result["telemetry_is_free"]:
        print(
            "FAIL: the telemetry-enabled report differs from the plain run "
            "(instrumentation gated behavior)"
        )
        return 1

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))

    # machine-independent exact checks: seeded campaign, exact censuses
    for key in (
        "rounds",
        "sent",
        "dropped",
        "messages",
        "rules",
        "kernel",
        "dropped_by_window",
        "traces",
        "config_digest",
    ):
        if result[key] != baseline[key]:
            print(
                f"FAIL: {key} = {result[key]!r}, baseline says {baseline[key]!r} "
                "(telemetry census drifted)"
            )
            return 1
    floor = baseline["rounds_per_sec"] / args.allowed_regression
    if result["rounds_per_sec"] < floor:
        print(
            f"FAIL: {result['rounds_per_sec']} rounds/sec is more than "
            f"{args.allowed_regression}x below baseline {baseline['rounds_per_sec']}"
        )
        return 1
    print(
        f"OK: {result['rounds_per_sec']} rounds/sec "
        f"(floor {floor:.2f}, baseline {baseline['rounds_per_sec']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
