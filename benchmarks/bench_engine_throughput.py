"""E11 — simulation-engine throughput.

Not a paper figure: regression benchmarks for the engine itself, so
that future changes to the rule pipeline or the fingerprinting stay
honest.  Timed units:

* one synchronous round on a stable 64-peer network (steady-state flow
  is the hot path: candidate announcements + connection streams);
* one global fingerprint of the same network;
* building a 64-peer random initial state.
"""

from __future__ import annotations

from repro.workloads.initial import build_random_network


def _stable_network(n: int = 64, seed: int = 2011):
    net = build_random_network(n=n, seed=seed)
    net.run_until_stable(max_rounds=20_000)
    return net


def test_round_throughput(benchmark):
    net = _stable_network()
    benchmark(net.run_round)


def test_fingerprint_cost(benchmark):
    net = _stable_network()
    benchmark(net.fingerprint)


def test_build_cost(benchmark):
    benchmark.pedantic(
        build_random_network, kwargs={"n": 64, "seed": 1}, rounds=5, iterations=1
    )
