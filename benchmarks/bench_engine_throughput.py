"""E11 — simulation-engine throughput.

Not a paper figure: regression benchmarks for the engine itself, so
that future changes to the rule pipeline or the fingerprinting stay
honest.  Timed units:

* one synchronous round on a stable 64-peer network (steady-state flow
  is the hot path — fully *replayed* by the incremental kernel, fully
  executed by the legacy one: both are benchmarked);
* one global fingerprint of the same network;
* building a 64-peer random initial state.

Comparison mode
---------------

``test_engine_comparison_table`` regenerates the kernel-comparison
table: post-churn re-stabilization (a single join into an already
stable network) timed through the legacy full-scan kernel, the
incremental dirty-set kernel and the columnar kernel, reported as
rounds/sec per size.  The default ladder is quick (n ∈ {64, 256});
set ``RECHORD_BENCH_FULL=1`` to run the full ladder
n ∈ {64, 256, 1024, 4096} (minutes — dominated by the stable-network
builds; the legacy kernel is skipped above n=512, where one of its
re-stabilizations alone would need tens of minutes).

The columnar acceptance bar is anchored to the *pre-columnar*
incremental kernel (4.8 rounds/sec at n=1024, the baseline this
optimization campaign started from): the shared protocol-layer wins of
the same campaign (interned envelopes, memoized fingerprints, key-based
rule loops) also lifted the incremental kernel severalfold, so the
in-table ratio understates what the columnar work bought.  Both ratios
are asserted: ≥ 5x against the fixed pre-columnar baseline, and a
same-table margin over the co-optimized incremental kernel.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.experiments.scaling import (
    ENGINE_SIZES_FULL,
    ENGINE_SIZES_QUICK,
    build_ideal_network,
    format_engine_comparison,
    run_engine_comparison,
)
from repro.workloads.initial import build_random_network


def _stable_network(n: int = 64, seed: int = 2011, incremental: bool = True):
    net = build_random_network(n=n, seed=seed, incremental=incremental)
    net.run_until_stable(max_rounds=20_000)
    return net


def test_round_throughput_incremental(benchmark):
    net = _stable_network(incremental=True)
    benchmark(net.run_round)


def test_round_throughput_full_scan(benchmark):
    net = _stable_network(incremental=False)
    benchmark(net.run_round)


def test_fingerprint_cost(benchmark):
    net = _stable_network()
    benchmark(net.fingerprint)


def test_canonical_token_cache(benchmark):
    """The version-keyed ``PeerState.canonical()`` memo: quiescence
    probes and fingerprints of unchanged peers return the cached tuple.
    Emits the cached-vs-rebuilt delta (the rebuild is forced by bumping
    each peer's version, which invalidates the memo)."""
    import time

    net = _stable_network()
    states = [peer.state for peer in net.peers.values()]
    for state in states:
        state.canonical()  # warm the memo

    def rebuild_all():
        for state in states:
            state.version += 1  # invalidate: forces a full rebuild
            state.canonical()

    def cached_all():
        for state in states:
            state.canonical()

    reps = 200
    t0 = time.perf_counter()
    for _ in range(reps):
        rebuild_all()
    rebuilt = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        cached_all()
    cached = (time.perf_counter() - t0) / reps
    emit(
        "canonical_cache",
        "PeerState.canonical() per sweep over a stable 64-peer network\n"
        f"  rebuilt (version bumped): {rebuilt * 1e6:9.1f} us\n"
        f"  cached (version stable):  {cached * 1e6:9.1f} us\n"
        f"  speedup: {rebuilt / max(cached, 1e-12):.1f}x",
    )
    # property, not timing (timings above are informational — a loaded
    # runner could invert them spuriously): while the version is
    # stable, canonical() must return the memoized tuple itself
    for state in states:
        assert state.canonical() is state.canonical(), "memo not hit"
    benchmark(cached_all)


def test_incremental_fingerprint_cost(benchmark):
    net = _stable_network(incremental=True)
    benchmark(net.incremental_fingerprint)


def test_build_cost(benchmark):
    benchmark.pedantic(
        build_random_network, kwargs={"n": 64, "seed": 1}, rounds=5, iterations=1
    )


def test_ideal_build_cost(benchmark):
    """Direct stable-state construction (the large-N benchmark path)."""
    benchmark.pedantic(
        build_ideal_network, kwargs={"n": 64, "seed": 1}, rounds=3, iterations=1
    )


#: incremental-kernel throughput at n=1024 *before* the columnar
#: optimization campaign (the fixed yardstick of the ≥ 5x columnar
#: acceptance bar; see the module docstring)
PRE_COLUMNAR_INCR_RPS_1024 = 4.8


def test_engine_comparison_table(benchmark):
    """Full-scan vs. incremental vs. columnar kernel, rounds/sec."""
    full = bool(os.environ.get("RECHORD_BENCH_FULL"))
    sizes = ENGINE_SIZES_FULL if full else ENGINE_SIZES_QUICK
    rows = run_engine_comparison(sizes=sizes)
    table = format_engine_comparison(rows) + (
        "\n\n(measured via repro.experiments.scaling.run_engine_comparison; the\n"
        "kernels are asserted fingerprint-identical after the same round count.\n"
        "full r/s is skipped above n=512 — one legacy re-stabilization there\n"
        "needs tens of minutes.  The columnar acceptance bar also holds against\n"
        f"the pre-columnar incremental kernel: {PRE_COLUMNAR_INCR_RPS_1024} rounds/sec at n=1024.\n"
        "Regenerate with:\n"
        "RECHORD_BENCH_FULL=1 PYTHONPATH=src pytest "
        "benchmarks/bench_engine_throughput.py -k comparison)"
    )
    emit("engine_comparison_full" if full else "engine_comparison", table)
    for n, row in rows.items():
        if row.speedup is not None:
            assert row.speedup > 1.0, f"incremental kernel slower at n={n}: {row}"
        if n >= 1024:
            # the headline bar: columnar vs. the fixed pre-columnar
            # incremental baseline ...
            assert row.col_rounds_per_sec >= 5 * PRE_COLUMNAR_INCR_RPS_1024, (
                f"columnar kernel under the 5x pre-columnar bar at n={n}: {row}"
            )
            # ... plus a same-table margin over the co-optimized
            # incremental kernel (the columnar advantage grows with n —
            # incremental delivery scales with total flow volume,
            # columnar surgery with the dirty set)
            assert row.col_speedup > 2.0, f"columnar margin too thin at n={n}: {row}"
    # the timed unit: one incremental-engine round on the largest stable
    # network of the ladder (steady state, fully replayed)
    largest = max(sizes)
    net = build_ideal_network(largest, seed=2011, incremental=True)
    benchmark(net.run_round)
