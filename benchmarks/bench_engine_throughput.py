"""E11 — simulation-engine throughput.

Not a paper figure: regression benchmarks for the engine itself, so
that future changes to the rule pipeline or the fingerprinting stay
honest.  Timed units:

* one synchronous round on a stable 64-peer network (steady-state flow
  is the hot path — fully *replayed* by the incremental kernel, fully
  executed by the legacy one: both are benchmarked);
* one global fingerprint of the same network;
* building a 64-peer random initial state.

Comparison mode
---------------

``test_engine_comparison_table`` regenerates the old-vs-new kernel
table: post-churn re-stabilization (a single join into an already
stable network) timed through the legacy full-scan kernel and the
incremental dirty-set kernel, reported as rounds/sec per size.  The
default ladder is quick (n ∈ {64, 256}); set ``RECHORD_BENCH_FULL=1``
to run the full ladder n ∈ {64, 256, 1024, 4096} (minutes — the legacy
kernel is the slow part, which is rather the point).
"""

from __future__ import annotations

import os

from conftest import emit

from repro.experiments.scaling import (
    ENGINE_SIZES_FULL,
    ENGINE_SIZES_QUICK,
    build_ideal_network,
    format_engine_comparison,
    run_engine_comparison,
)
from repro.workloads.initial import build_random_network


def _stable_network(n: int = 64, seed: int = 2011, incremental: bool = True):
    net = build_random_network(n=n, seed=seed, incremental=incremental)
    net.run_until_stable(max_rounds=20_000)
    return net


def test_round_throughput_incremental(benchmark):
    net = _stable_network(incremental=True)
    benchmark(net.run_round)


def test_round_throughput_full_scan(benchmark):
    net = _stable_network(incremental=False)
    benchmark(net.run_round)


def test_fingerprint_cost(benchmark):
    net = _stable_network()
    benchmark(net.fingerprint)


def test_canonical_token_cache(benchmark):
    """The version-keyed ``PeerState.canonical()`` memo: quiescence
    probes and fingerprints of unchanged peers return the cached tuple.
    Emits the cached-vs-rebuilt delta (the rebuild is forced by bumping
    each peer's version, which invalidates the memo)."""
    import time

    net = _stable_network()
    states = [peer.state for peer in net.peers.values()]
    for state in states:
        state.canonical()  # warm the memo

    def rebuild_all():
        for state in states:
            state.version += 1  # invalidate: forces a full rebuild
            state.canonical()

    def cached_all():
        for state in states:
            state.canonical()

    reps = 200
    t0 = time.perf_counter()
    for _ in range(reps):
        rebuild_all()
    rebuilt = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        cached_all()
    cached = (time.perf_counter() - t0) / reps
    emit(
        "canonical_cache",
        "PeerState.canonical() per sweep over a stable 64-peer network\n"
        f"  rebuilt (version bumped): {rebuilt * 1e6:9.1f} us\n"
        f"  cached (version stable):  {cached * 1e6:9.1f} us\n"
        f"  speedup: {rebuilt / max(cached, 1e-12):.1f}x",
    )
    # property, not timing (timings above are informational — a loaded
    # runner could invert them spuriously): while the version is
    # stable, canonical() must return the memoized tuple itself
    for state in states:
        assert state.canonical() is state.canonical(), "memo not hit"
    benchmark(cached_all)


def test_incremental_fingerprint_cost(benchmark):
    net = _stable_network(incremental=True)
    benchmark(net.incremental_fingerprint)


def test_build_cost(benchmark):
    benchmark.pedantic(
        build_random_network, kwargs={"n": 64, "seed": 1}, rounds=5, iterations=1
    )


def test_ideal_build_cost(benchmark):
    """Direct stable-state construction (the large-N benchmark path)."""
    benchmark.pedantic(
        build_ideal_network, kwargs={"n": 64, "seed": 1}, rounds=3, iterations=1
    )


def test_engine_comparison_table(benchmark):
    """Old full-scan kernel vs. new incremental kernel, rounds/sec."""
    full = bool(os.environ.get("RECHORD_BENCH_FULL"))
    sizes = ENGINE_SIZES_FULL if full else ENGINE_SIZES_QUICK
    rows = run_engine_comparison(sizes=sizes)
    emit("engine_comparison_full" if full else "engine_comparison", format_engine_comparison(rows))
    for n, row in rows.items():
        assert row.speedup > 1.0, f"incremental kernel slower at n={n}: {row}"
    # the timed unit: one incremental-engine round on the largest stable
    # network of the ladder (steady state, fully replayed)
    largest = max(sizes)
    net = build_ideal_network(largest, seed=2011, incremental=True)
    benchmark(net.run_round)
