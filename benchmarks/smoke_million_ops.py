#!/usr/bin/env python
"""CI smoke benchmark: the streaming traffic plane at ~10^5 ops, n=256.

Scaled-down twin of ``benchmarks/run_million_ops.py`` (the recorded
10^6-op campaign): one seeded high-rate campaign with a churn burst is
run twice in the same process — streaming collector first, then list
mode on identical seeds.  Checks against the checked-in
``benchmarks/baseline_million.json``:

* **machine-independent exact checks** — completed-op count, outcome
  census and violation count of the streaming run must match the
  baseline exactly (the arrival stream is seeded and batched injection
  is stream-identical by contract);
* **same-run differential** — the streaming summary must agree with the
  list-mode summary on every exact counter key, in-process, at scale
  (the unit-scale version lives in ``tests/test_traffic_streaming.py``);
* **bounded memory** — the streaming collector must hold exactly its
  reservoir of completions (machine-independent), and the process
  peak RSS measured right after the streaming run must stay under a
  generous ceiling (catches accidental O(ops) retention);
* **same-run throughput floor** — streaming must not be slower than
  list mode beyond a small tolerance; both runs share the process and
  the machine, so the comparison is machine-independent.

Usage::

    PYTHONPATH=src python benchmarks/smoke_million_ops.py            # gate
    PYTHONPATH=src python benchmarks/smoke_million_ops.py --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_million.json"
N = 256
SEED = 20110607
ROUNDS = 48
RATE = 1500.0
RESERVOIR = 1024
#: streaming may not run slower than list mode by more than this factor
#: (same process, same machine: the comparison is hardware-independent;
#: the margin absorbs the first-campaign warmup the streaming run pays
#: for going first — the RSS high-water check forces that order)
THROUGHPUT_TOLERANCE = 0.80
#: peak-RSS ceiling (MiB) for the streaming campaign, with headroom for
#: interpreter/platform variance — the hard memory contract is the
#: reservoir assertion, this catches gross O(ops) retention regressions
RSS_CEILING_MIB = 1024


def campaign(mode: str) -> dict:
    """One seeded churny high-rate campaign; returns summary + timings."""
    from repro.experiments.scaling import build_ideal_network
    from repro.netsim.rng import SeedSequence
    from repro.traffic import TrafficPlane, WorkloadGenerator
    from repro.workloads.initial import random_peer_ids

    seq = SeedSequence(SEED).child("smoke-million", n=N)
    net = build_ideal_network(N, seq.child("build").seed(), incremental=True)
    plane = TrafficPlane(net, collector_mode=mode, reservoir_size=RESERVOIR)
    WorkloadGenerator(
        plane,
        rate=RATE,
        key_universe=max(256, N),
        popularity="zipf",
        deadline=40,
        seed=seq.child("workload").seed(),
    )
    rng = seq.child("churn").rng()
    t0 = time.perf_counter()
    for round_no in range(ROUNDS):
        if round_no == 12:
            join_id = random_peer_ids(1, rng, net.space)[0]
            while join_id in net.peers:
                join_id = random_peer_ids(1, rng, net.space)[0]
            net.join(join_id, rng.choice(net.peer_ids))
        if round_no == 24:
            net.crash(rng.choice(net.peer_ids))
        plane.run_round()
    plane.generator.active = False
    plane.drain()
    elapsed = time.perf_counter() - t0
    summary = plane.collector.summary()
    return {
        "mode": mode,
        "summary": summary,
        "resident_completions": len(plane.collector.completed),
        "elapsed": elapsed,
        "ops_per_sec": round(summary["completed"] / elapsed, 2),
    }


def peak_rss_mib() -> float:
    import resource

    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss_kib / 1024.0


#: summary keys that must agree bit-for-bit between the two modes
EXACT_KEYS = (
    "issued", "completed", "outstanding", "success_rate", "violations",
    "late_replies", "outcomes", "latency_mean", "latency_max",
    "wire_delay_mean", "wire_delay_max", "hops_mean", "hops_max",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=THROUGHPUT_TOLERANCE,
        help="minimum streaming/list ops-per-sec ratio (default %(default)s)",
    )
    parser.add_argument(
        "--rss-ceiling-mib",
        type=float,
        default=RSS_CEILING_MIB,
        help="peak-RSS ceiling for the streaming campaign (default %(default)s)",
    )
    args = parser.parse_args(argv)

    # streaming first: ru_maxrss is a process high-water mark, so the
    # ceiling is only meaningful before the list-mode run inflates it
    streaming = campaign("streaming")
    rss_mib = peak_rss_mib()
    listing = campaign("list")
    s_sum, l_sum = streaming["summary"], listing["summary"]

    result = {
        "n": N,
        "rounds": ROUNDS,
        "rate": RATE,
        "completed": s_sum["completed"],
        "outcomes": s_sum["outcomes"],
        "violations": s_sum["violations"],
        "success_rate": s_sum["success_rate"],
        "streaming_ops_per_sec": streaming["ops_per_sec"],
        "list_ops_per_sec": listing["ops_per_sec"],
        "peak_rss_mib": round(rss_mib, 1),
    }
    print("measured:", json.dumps(result))

    # -- same-run checks (no baseline needed) ---------------------------
    for key in EXACT_KEYS:
        if (key in s_sum or key in l_sum) and s_sum.get(key) != l_sum.get(key):
            print(
                f"FAIL: streaming/list divergence on exact key {key}: "
                f"{s_sum.get(key)!r} != {l_sum.get(key)!r}"
            )
            return 1
    if streaming["resident_completions"] > RESERVOIR:
        print(
            f"FAIL: streaming collector retained "
            f"{streaming['resident_completions']} completions "
            f"(> reservoir {RESERVOIR}) — memory is not O(reservoir)"
        )
        return 1
    if s_sum["completed"] <= RESERVOIR:
        print("FAIL: campaign too small to exercise the reservoir bound")
        return 1
    if rss_mib > args.rss_ceiling_mib:
        print(
            f"FAIL: streaming campaign peak RSS {rss_mib:.1f} MiB exceeds "
            f"ceiling {args.rss_ceiling_mib} MiB"
        )
        return 1
    ratio = streaming["ops_per_sec"] / max(1e-9, listing["ops_per_sec"])
    if ratio < args.throughput_tolerance:
        print(
            f"FAIL: streaming throughput {streaming['ops_per_sec']} ops/sec is "
            f"{ratio:.2f}x of list mode {listing['ops_per_sec']} "
            f"(floor {args.throughput_tolerance}x)"
        )
        return 1

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))
    for key in ("completed", "outcomes", "violations", "success_rate"):
        if result[key] != baseline[key]:
            print(
                f"FAIL: {key} = {result[key]!r}, baseline says {baseline[key]!r} "
                "(traffic-plane behavior changed)"
            )
            return 1
    print(
        f"OK: census exact; streaming {streaming['ops_per_sec']} vs list "
        f"{listing['ops_per_sec']} ops/sec ({ratio:.2f}x, floor "
        f"{args.throughput_tolerance}x); reservoir "
        f"{streaming['resident_completions']}/{RESERVOIR}; "
        f"peak RSS {rss_mib:.1f} MiB (ceiling {args.rss_ceiling_mib})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
