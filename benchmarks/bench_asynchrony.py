"""Fair partial activation (E15).

Regenerates the activation-robustness table and benchmarks one p = 0.5
run at n = 16 (roughly 2x the synchronous round count, each round
cheaper since only half the peers step).
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.experiments.asynchrony import (
    format_asynchrony,
    rounds_to_ideal_under_activation,
    run_asynchrony,
)

SIZES = (8, 16, 32)


def test_partial_activation(benchmark):
    result = run_asynchrony(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("asynchrony", format_asynchrony(result))
    for n in SIZES:
        row = result[n]
        # convergence survives partial activation, stretched sub-4/p
        assert row["rounds_p40"].mean >= row["rounds_p100"].mean
        assert row["stretch_p40"].mean <= 10.0

    benchmark.pedantic(
        rounds_to_ideal_under_activation, args=(16, 2011, 0.5), rounds=3, iterations=1
    )
