#!/usr/bin/env python
"""CI smoke gate: the resilient request plane, off-equivalence + survival.

Two independent checks, both fully seeded and machine-independent:

1. **off-equivalence** — the exact campaign ``smoke_traffic.py`` gates,
   re-run through a :class:`TrafficPlane` constructed with every
   resilience knob *explicitly passed at its default* (``max_attempts=1``,
   ``retry_backoff=4``, ``hedge_after=None``, ``route_redundancy=1``,
   plus a non-zero ``retry_seed``).  The census must equal the
   checked-in ``benchmarks/baseline_traffic.json`` exactly: a disabled
   resilience plane is bit-for-bit the pre-resilience plane, so every
   historical baseline stands unregenerated.

2. **mass-failure survival** — the ``mass-failure`` library scenario at
   n=256 (a seeded 50% crash wave mid-traffic, per-attempt deadline 12,
   ``max_attempts=6`` with seeded backoff, ``route_redundancy=2``).
   The failure-window survival (ops issued during the outage that
   eventually routed) must clear ``SURVIVAL_FLOOR``, and the full
   census — config digest, survival table, outcome counts, retry and
   attempt histograms — must match ``benchmarks/baseline_resilience.json``
   exactly.  A throughput floor (3x) guards against pathological
   slowdowns.

Usage::

    PYTHONPATH=src python benchmarks/smoke_resilience.py            # gate
    PYTHONPATH=src python benchmarks/smoke_resilience.py --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_resilience.json"
TRAFFIC_BASELINE_PATH = Path(__file__).resolve().parent / "baseline_traffic.json"

#: part 1 mirrors smoke_traffic.py exactly (same constants, same seeds)
N_OFF = 256
SEED_OFF = 2011
ROUNDS_OFF = 40

#: part 2: the mass-failure survival campaign
N_SURVIVAL = 256
SEED_SURVIVAL = 2011
SURVIVAL_FLOOR = 0.99


def measure_off_equivalence() -> dict:
    """The smoke_traffic campaign with resilience knobs passed (at their
    defaults) — must reproduce baseline_traffic.json bit-for-bit."""
    from repro.dht.lookup import ReChordRouter
    from repro.dht.storage import KeyValueStore
    from repro.experiments.scaling import build_ideal_network
    from repro.netsim.rng import SeedSequence
    from repro.traffic import TrafficPlane, WorkloadGenerator
    from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT
    from repro.workloads.initial import random_peer_ids

    seq = SeedSequence(SEED_OFF).child("smoke-traffic", n=N_OFF)
    net = build_ideal_network(N_OFF, seq.child("build").seed(), incremental=True)
    store = KeyValueStore(ReChordRouter(net))
    plane = TrafficPlane(
        net,
        store=store,
        # the whole point: knobs present, features off, behavior identical
        max_attempts=1,
        retry_backoff=4,
        hedge_after=None,
        route_redundancy=1,
        retry_seed=seq.child("retry").seed(),
    )
    WorkloadGenerator(
        plane,
        rate=4.0,
        op_mix=((OP_LOOKUP, 0.6), (OP_GET, 0.2), (OP_PUT, 0.2)),
        key_universe=128,
        popularity="zipf",
        deadline=40,
        seed=seq.child("workload").seed(),
    )
    rng = seq.child("churn").rng()
    for round_no in range(ROUNDS_OFF):
        if round_no == 8:
            join_id = random_peer_ids(1, rng, net.space)[0]
            while join_id in net.peers:
                join_id = random_peer_ids(1, rng, net.space)[0]
            net.join(join_id, rng.choice(net.peer_ids))
        if round_no == 16:
            net.crash(rng.choice(net.peer_ids))
        plane.run_round()
    plane.generator.active = False
    plane.drain()
    summary = plane.collector.summary()
    return {
        "completed": summary["completed"],
        "outcomes": summary["outcomes"],
        "violations": summary["violations"],
    }


def measure_survival() -> dict:
    """The mass-failure campaign at n=256: survival census + digest."""
    from repro.scenarios import make_scenario, run_scenario

    spec = make_scenario("mass-failure", n=N_SURVIVAL, seed=SEED_SURVIVAL)
    t0 = time.perf_counter()
    report = run_scenario(spec)
    elapsed = time.perf_counter() - t0
    slo = report.slo or {}
    failure = next(
        (row for row in report.survival_by_window if "crash_wave" in row[0]),
        None,
    )
    if failure is None:
        raise RuntimeError(
            f"no crash window in survival table {report.survival_by_window!r}"
        )
    window, issued, routed = failure
    return {
        "scenario": "mass-failure",
        "n": N_SURVIVAL,
        "seed": SEED_SURVIVAL,
        "max_attempts": spec.traffic.max_attempts,
        "route_redundancy": spec.traffic.route_redundancy,
        "rounds_total": report.rounds_total,
        "recovery_rounds": report.recovery_rounds,
        "event_census": report.event_census,
        "survival_by_window": [list(row) for row in report.survival_by_window],
        "failure_window": window,
        "failure_issued": issued,
        "failure_routed": routed,
        "failure_survival": round(routed / issued, 4) if issued else 0.0,
        "completed": slo.get("completed", 0),
        "outcomes": slo.get("outcomes", {}),
        "retries": slo.get("retries", 0),
        "attempts": slo.get("attempts", {}),
        "first_attempt_success": slo.get("first_attempt_success", 0),
        "eventual_success": slo.get("eventual_success", 0),
        "config_digest": report.config_digest,
        "rounds_per_sec": round(report.rounds_total / elapsed, 2),
    }


#: survival-census keys compared exactly against the baseline
EXACT_KEYS = (
    "max_attempts",
    "route_redundancy",
    "rounds_total",
    "recovery_rounds",
    "event_census",
    "survival_by_window",
    "failure_window",
    "failure_issued",
    "failure_routed",
    "failure_survival",
    "completed",
    "outcomes",
    "retries",
    "attempts",
    "first_attempt_success",
    "eventual_success",
    "config_digest",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline rounds/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    # ---- part 1: resilience-off equivalence vs. the traffic baseline ----
    off = measure_off_equivalence()
    print("off-equivalence measured:", json.dumps(off))
    if not TRAFFIC_BASELINE_PATH.exists():
        print(f"FAIL: {TRAFFIC_BASELINE_PATH} missing (run smoke_traffic.py --update)")
        return 1
    traffic_baseline = json.loads(TRAFFIC_BASELINE_PATH.read_text())
    for key in ("completed", "outcomes", "violations"):
        if off[key] != traffic_baseline[key]:
            print(
                f"FAIL: off-equivalence {key} = {off[key]!r}, "
                f"baseline_traffic says {traffic_baseline[key]!r} "
                "(a disabled resilience plane must be bit-for-bit the old plane)"
            )
            return 1
    print("OK: resilience-off census equals baseline_traffic.json exactly")

    # ---- part 2: mass-failure survival census ---------------------------
    result = measure_survival()
    print("survival measured:", json.dumps(result))

    if result["failure_survival"] < SURVIVAL_FLOOR:
        print(
            f"FAIL: failure-window survival {result['failure_survival']} "
            f"below the floor {SURVIVAL_FLOOR} "
            f"({result['failure_routed']}/{result['failure_issued']} ops)"
        )
        return 1

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))
    for key in EXACT_KEYS:
        if result[key] != baseline[key]:
            print(
                f"FAIL: {key} = {result[key]!r}, baseline says {baseline[key]!r} "
                "(resilient-plane behavior changed)"
            )
            return 1
    floor = baseline["rounds_per_sec"] / args.allowed_regression
    if result["rounds_per_sec"] < floor:
        print(
            f"FAIL: {result['rounds_per_sec']} rounds/sec is more than "
            f"{args.allowed_regression}x below baseline {baseline['rounds_per_sec']}"
        )
        return 1
    print(
        f"OK: survival {result['failure_survival']:.2%} >= {SURVIVAL_FLOOR:.0%}, "
        f"{result['rounds_per_sec']} rounds/sec "
        f"(floor {floor:.2f}, baseline {baseline['rounds_per_sec']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
