#!/usr/bin/env python
"""One-shot 100k-peer stabilization on the columnar kernel.

Records the large-N datapoint behind the columnar engine work (see
docs/ARCHITECTURE.md): a network of 100 000 peers is constructed in its
ideal topology, the constant message flow of the stable configuration
is allowed to establish itself (every peer executes every round until
the rule-3 candidate waves die out — this *is* a stabilization, from a
state one write away from the fixpoint), and a single join is then
re-stabilized to measure steady-state post-churn throughput.

The full-scan kernel would need days for the same workload (it scans
all peers and re-buckets the entire ~10M-envelope in-flight multiset
every round); the incremental kernel still pays per-round delivery
proportional to the flow volume.  Only the columnar kernel's
flow-indexed surgery makes the run practical, which is the point of
recording it.

Writes ``benchmarks/results/columnar_100k.json``.  Expect a wall-clock
of one to two hours, dominated by the dense settle phase.  Usage::

    PYTHONPATH=src python benchmarks/run_columnar_100k.py [--n 100000]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.experiments.scaling import (
    _post_churn_restabilize,
    build_ideal_network,
)
from repro.netsim.rng import SeedSequence
from repro.workloads.initial import random_peer_ids

RESULTS = Path(__file__).resolve().parent / "results" / "columnar_100k.json"
ROOT_SEED = 20110607  # the repo-wide experiment seed (SPAA'11 submission date)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--out", type=Path, default=RESULTS)
    args = parser.parse_args()
    n = args.n

    seq = SeedSequence(ROOT_SEED).child("engine", n=n)
    build_seed = seq.child("build").seed()
    rng = seq.child("join").rng()

    print(f"[columnar-100k] building ideal network, n={n} ...", flush=True)
    t0 = time.perf_counter()
    net = build_ideal_network(n, build_seed, engine="columnar", settle_rounds=256)
    build_secs = time.perf_counter() - t0
    settle_rounds = net.scheduler.round_no
    print(
        f"[columnar-100k] settled in {settle_rounds} rounds, "
        f"{build_secs:.0f}s wall (construction + settle)",
        flush=True,
    )

    join_id = random_peer_ids(1, rng, net.space)[0]
    while join_id in net.peers:
        join_id = random_peer_ids(1, rng, net.space)[0]
    gateway = rng.choice(net.peer_ids)

    print(f"[columnar-100k] re-stabilizing a single join ...", flush=True)
    report, secs, frac = _post_churn_restabilize(net, join_id, gateway, 5_000)
    rounds = report.rounds_executed
    rps = rounds / secs if secs > 0 else float("inf")
    print(
        f"[columnar-100k] join re-stabilized in {rounds} rounds, "
        f"{secs:.1f}s ({rps:.1f} rounds/sec, executed fraction {frac:.5f})",
        flush=True,
    )

    payload = {
        "description": (
            "100k-peer stabilization on the columnar kernel: settle of the "
            "ideal-constructed configuration, then a single-join "
            "re-stabilization"
        ),
        "n": n,
        "root_seed": ROOT_SEED,
        "engine": "columnar",
        "settle": {"rounds": settle_rounds, "secs": round(build_secs, 1)},
        "join_restabilize": {
            "rounds": rounds,
            "secs": round(secs, 2),
            "rounds_per_sec": round(rps, 2),
            "executed_fraction": round(frac, 6),
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[columnar-100k] wrote {args.out}", flush=True)


if __name__ == "__main__":
    main()
