#!/usr/bin/env python
"""CI smoke gate: one latency-model campaign, exact round/ops census.

Runs the ``jitter-storm`` campaign (bounded per-message delivery
reordering on every link plus a churn burst, mixed traffic flowing,
jitter persisting through recovery) at n=32 on the incremental kernel
and checks two classes of properties against
``benchmarks/baseline_latency.json``:

* **machine-independent exact checks** — the campaign and every delay
  draw are seeded (BLAKE2-keyed, never builtin ``hash``), so the
  recovery round count, final-configuration digest, event census,
  completed-op count, outcome census and the wire-delay census must
  match the baseline exactly (any drift means the delivery engine, the
  delivery-queue exactness rules, traffic or kernel behavior changed);
* **throughput floor** — campaign rounds/sec must stay within
  ``allowed_regression`` (default 3x) of the baseline.

Usage::

    PYTHONPATH=src python benchmarks/smoke_latency.py            # gate
    PYTHONPATH=src python benchmarks/smoke_latency.py --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_latency.json"
SCENARIO = "jitter-storm"
N = 32
SEED = 2026


def measure() -> dict:
    from repro.scenarios import make_scenario, run_scenario

    spec = make_scenario(SCENARIO, n=N, seed=SEED)
    t0 = time.perf_counter()
    report = run_scenario(spec)
    elapsed = time.perf_counter() - t0
    slo = report.slo or {}
    return {
        "scenario": SCENARIO,
        "n": N,
        "seed": SEED,
        "rounds_total": report.rounds_total,
        "recovery_rounds": report.recovery_rounds,
        "stable": report.stable,
        "ideal": report.ideal,
        "event_census": report.event_census,
        "completed": slo.get("completed", 0),
        "outcomes": slo.get("outcomes", {}),
        "violations": slo.get("violations", 0),
        "wire_delay_mean": slo.get("wire_delay_mean", 0),
        "wire_delay_max": slo.get("wire_delay_max", 0),
        "config_digest": report.config_digest,
        "rounds_per_sec": round(report.rounds_total / elapsed, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--allowed-regression",
        type=float,
        default=3.0,
        help="maximum slowdown factor vs. the baseline rounds/sec (default 3x)",
    )
    args = parser.parse_args(argv)

    result = measure()
    print("measured:", json.dumps(result))

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline))

    # machine-independent exact checks: seeded campaign, exact census
    for key in (
        "rounds_total",
        "recovery_rounds",
        "stable",
        "ideal",
        "event_census",
        "completed",
        "outcomes",
        "violations",
        "wire_delay_mean",
        "wire_delay_max",
        "config_digest",
    ):
        if result[key] != baseline[key]:
            print(
                f"FAIL: {key} = {result[key]!r}, baseline says {baseline[key]!r} "
                "(latency-engine behavior changed)"
            )
            return 1
    floor = baseline["rounds_per_sec"] / args.allowed_regression
    if result["rounds_per_sec"] < floor:
        print(
            f"FAIL: {result['rounds_per_sec']} rounds/sec is more than "
            f"{args.allowed_regression}x below baseline {baseline['rounds_per_sec']}"
        )
        return 1
    print(
        f"OK: {result['rounds_per_sec']} rounds/sec "
        f"(floor {floor:.2f}, baseline {baseline['rounds_per_sec']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
