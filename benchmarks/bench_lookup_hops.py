"""Fact 2.1 + O(log n) lookups (E7).

Regenerates the Chord-coverage / hop-count table and benchmarks a batch
of 50 greedy lookups on a stabilized 64-peer overlay.
"""

from __future__ import annotations

import random

from conftest import BENCH_SEEDS, emit

from repro.dht.lookup import ReChordRouter
from repro.experiments.lookup import format_lookup, run_lookup
from repro.workloads.initial import build_random_network

SIZES = (8, 16, 32, 64)


def test_lookup_hops(benchmark):
    result = run_lookup(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("lookup_hops", format_lookup(result))
    for n in SIZES:
        assert result[n]["chord_coverage"].mean == 1.0, "Fact 2.1 must hold"
    # normalized hops stay bounded (logarithmic routing)
    norms = [result[n]["hops_over_log2"].mean for n in SIZES]
    assert max(norms) < 1.5

    net = build_random_network(n=64, seed=2011)
    net.run_until_stable(max_rounds=20_000)
    router = ReChordRouter(net)
    rng = random.Random(0)
    pairs = [
        (rng.choice(net.peer_ids), rng.randrange(net.space.size)) for _ in range(50)
    ]

    def lookup_batch():
        return sum(router.route_id(s, k).hops for s, k in pairs)

    benchmark(lookup_batch)
