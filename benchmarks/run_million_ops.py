#!/usr/bin/env python
"""One-shot 10^6-op traffic campaign at n=1024 on the streaming collector.

The datapoint behind the streaming traffic plane (see "Traffic at
scale" in docs/ARCHITECTURE.md): a 1024-peer network carries a
sustained seeded workload of one million operations concurrent with
periodic churn (a crash and a join every 64 rounds), with the
SLO collector in streaming mode — exact running counters, a P² p95
sketch, and a seeded reservoir sample instead of the O(ops) completion
list.  The list-mode collector would retain every ``CompletedOp`` of
the campaign; the streaming ledger's resident completion set is bounded
by the reservoir regardless of campaign length, which is what makes
this run (and longer ones) practical.

Writes ``benchmarks/results/million_ops.json`` and ``.txt``.  Expect a
wall-clock of tens of minutes, dominated by the per-round rule pipeline
of the traffic-touched peers.  Usage::

    PYTHONPATH=src python benchmarks/run_million_ops.py [--ops 1000000]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.experiments.scaling import build_ideal_network
from repro.netsim.rng import SeedSequence
from repro.traffic import TrafficPlane, WorkloadGenerator
from repro.traffic.slo import latency_histogram
from repro.workloads.initial import random_peer_ids

RESULTS_DIR = Path(__file__).resolve().parent / "results"
ROOT_SEED = 20110607  # the repo-wide experiment seed (SPAA'11 submission date)
N = 1024
RATE = 2000.0
CHURN_EVERY = 64
RESERVOIR = 4096


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--ops", type=int, default=1_000_000)
    parser.add_argument("--rate", type=float, default=RATE)
    parser.add_argument("--out-dir", type=Path, default=RESULTS_DIR)
    args = parser.parse_args()
    n, rate = args.n, args.rate
    rounds = max(1, round(args.ops / rate))

    seq = SeedSequence(ROOT_SEED).child("million-ops", n=n)
    print(f"[million-ops] building ideal network, n={n} ...", flush=True)
    t_build = time.perf_counter()
    net = build_ideal_network(n, seq.child("build").seed(), incremental=True)
    build_secs = time.perf_counter() - t_build

    plane = TrafficPlane(
        net, collector_mode="streaming", reservoir_size=RESERVOIR
    )
    WorkloadGenerator(
        plane,
        rate=rate,
        key_universe=max(1024, n),
        popularity="zipf",
        deadline=48,
        seed=seq.child("workload").seed(),
    )
    churn_rng = seq.child("churn").rng()
    crashes = joins = 0
    print(
        f"[million-ops] {rounds} rounds at rate {rate:g} "
        f"(~{int(rounds * rate):,} ops), churn every {CHURN_EVERY} rounds ...",
        flush=True,
    )
    t0 = time.perf_counter()
    for round_no in range(rounds):
        if round_no and round_no % CHURN_EVERY == 0:
            net.crash(churn_rng.choice(net.peer_ids))
            crashes += 1
            join_id = random_peer_ids(1, churn_rng, net.space)[0]
            while join_id in net.peers:
                join_id = random_peer_ids(1, churn_rng, net.space)[0]
            net.join(join_id, churn_rng.choice(net.peer_ids))
            joins += 1
        plane.run_round()
        if (round_no + 1) % 50 == 0:
            done = plane.collector.completed_count
            secs = time.perf_counter() - t0
            print(
                f"[million-ops] round {round_no + 1}/{rounds}  "
                f"completed={done:,}  ({done / secs:,.0f} ops/sec)",
                flush=True,
            )
    plane.generator.active = False
    plane.drain()
    elapsed = time.perf_counter() - t0
    coll = plane.collector
    summary = coll.summary()
    resident = len(coll.completed)
    assert resident <= RESERVOIR, "streaming ledger exceeded its reservoir"

    hist = latency_histogram(coll.routed_latencies())
    lines = [
        f"10^6-op streaming traffic campaign, n={n}, rate={rate:g}/round",
        "=" * 72,
        f"rounds:               {rounds} (+drain)",
        f"churn:                {crashes} crashes, {joins} joins",
        f"issued:               {summary['issued']:,}",
        f"completed:            {summary['completed']:,}",
        f"success_rate:         {summary['success_rate']}",
        f"violations:           {summary['violations']}",
        f"outcomes:             {summary['outcomes']}",
        f"latency mean/p95/max: {summary.get('latency_mean')} / "
        f"{summary.get('latency_p95')} / {summary.get('latency_max')}",
        f"hops mean/max:        {summary.get('hops_mean')} / {summary.get('hops_max')}",
        f"resident completions: {resident} (reservoir {RESERVOIR}; "
        "list mode would retain every completion)",
        f"throughput:           {summary['completed'] / elapsed:,.0f} ops/sec "
        f"({elapsed:,.0f}s wall)",
        "reservoir-sample latency histogram (rounds): "
        + "  ".join(f"{label}:{count}" for label, count in hist if count),
    ]
    text = "\n".join(lines)
    print(text, flush=True)

    payload = {
        "description": (
            "seeded million-op traffic campaign concurrent with periodic "
            "churn, streaming SLO collector (bounded memory)"
        ),
        "n": n,
        "root_seed": ROOT_SEED,
        "rate": rate,
        "rounds": rounds,
        "churn": {"every": CHURN_EVERY, "crashes": crashes, "joins": joins},
        "collector": {
            "mode": "streaming",
            "reservoir_size": RESERVOIR,
            "resident_completions": resident,
        },
        "summary": summary,
        "latency_hist_reservoir_sample": [list(pair) for pair in hist],
        "wall_secs": round(elapsed, 1),
        "ops_per_sec": round(summary["completed"] / elapsed, 1),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    (args.out_dir / "million_ops.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    (args.out_dir / "million_ops.txt").write_text(text + "\n")
    print(f"[million-ops] wrote {args.out_dir / 'million_ops.json'}", flush=True)


if __name__ == "__main__":
    main()
