"""Proof-phase completion rounds (Lemmas 3.2–3.11).

Regenerates the phase table and benchmarks one instrumented run (all
five phase predicates sampled every round) at n = 32.
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.experiments.phases import format_phases, measure_one, run_phases

SIZES = (8, 16, 32)


def test_phase_completion(benchmark):
    result = run_phases(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("phase_completion", format_phases(result))
    for n in SIZES:
        row = result[n]
        # proof order: connection first, cleanup last
        assert row["connection"].mean <= row["cleanup"].mean
        assert row["ring"].mean <= row["cleanup"].mean

    benchmark.pedantic(measure_one, args=(32, 2011), rounds=3, iterations=1)
