"""§6 extension — economical rule-3 broadcast.

Regenerates the economy comparison table and benchmarks one economical
stabilization at n = 32 (should be no slower than the faithful mode
benched in bench_fig5_edges_nodes).
"""

from __future__ import annotations

from conftest import BENCH_SEEDS, emit

from repro.core.rules import RuleConfig
from repro.experiments.economy import format_economy, run_economy
from repro.workloads.initial import build_random_network

SIZES = (8, 16, 32)


def eco_unit(n: int, seed: int) -> int:
    net = build_random_network(
        n=n, seed=seed, config=RuleConfig(economical_broadcast=True)
    )
    return net.run_until_stable(max_rounds=20_000).rounds_to_stable


def test_economy_broadcast(benchmark):
    result = run_economy(sizes=SIZES, seeds=BENCH_SEEDS)
    emit("economy_broadcast", format_economy(result))
    for n in SIZES:
        row = result[n]
        # convergence speed preserved, steady traffic reduced
        assert row["rounds_eco"].mean <= row["rounds_full"].mean + 2
        assert row["steady_saving"].mean > 0.1

    benchmark.pedantic(eco_unit, args=(32, 2011), rounds=3, iterations=1)
