#!/usr/bin/env python
"""Theorems 4.1/4.2 in action: churn repair cost vs. network size.

Measures the rounds needed to re-stabilize after a single join, graceful
leave and crash, across a doubling ladder of network sizes, and prints
them next to log2(n)^2 / log2(n) so the polylogarithmic shapes of the
two theorems are visible directly.

Run:  python examples/join_leave_latency.py
"""

import math
import random

from repro import build_random_network
from repro.workloads.initial import random_peer_ids


def measure(n: int, seed: int):
    rng = random.Random(seed)

    def fresh_stable():
        net = build_random_network(n=n, seed=seed)
        net.run_until_stable(max_rounds=10_000)
        return net

    net = fresh_stable()
    new_id = random_peer_ids(1, rng, net.space)[0]
    while new_id in net.peers:
        new_id = random_peer_ids(1, rng, net.space)[0]
    net.join(new_id, rng.choice(net.peer_ids))
    join = net.run_until_stable(max_rounds=10_000).rounds_to_stable

    net = fresh_stable()
    net.leave(rng.choice(net.peer_ids))
    leave = net.run_until_stable(max_rounds=10_000).rounds_to_stable

    net = fresh_stable()
    net.crash(rng.choice(net.peer_ids))
    crash = net.run_until_stable(max_rounds=10_000).rounds_to_stable

    return join, leave, crash


def main() -> None:
    print(f"{'n':>4}  {'join':>5} {'leave':>5} {'crash':>5}   {'log2(n)^2':>9} {'log2(n)':>7}")
    for n in (8, 16, 32, 64):
        join, leave, crash = measure(n, seed=11)
        l2 = math.log2(n)
        print(f"{n:>4}  {join:>5} {leave:>5} {crash:>5}   {l2*l2:>9.1f} {l2:>7.1f}")
    print("\njoin tracks log2(n)^2 (Thm 4.1); leave/crash track log2(n) (Thm 4.2)")


if __name__ == "__main__":
    main()
