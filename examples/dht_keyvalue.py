#!/usr/bin/env python
"""A replicated key-value store on top of the stabilized overlay.

Fact 2.1 makes the stable Re-Chord network a drop-in Chord: this example
stores 100 keys with 3-way ring-successor replication, routes lookups
greedily (O(log n) hops), crashes a replica holder, re-stabilizes, and
shows that every key survives.

Run:  python examples/dht_keyvalue.py
"""

import random
import statistics

from repro import build_random_network
from repro.dht import KeyValueStore, ReChordRouter


def main() -> None:
    net = build_random_network(n=20, seed=2024)
    net.run_until_stable(max_rounds=2000)
    print(f"overlay       : {len(net.peers)} peers stabilized")

    router = ReChordRouter(net)
    store = KeyValueStore(router, replication=3)
    rng = random.Random(1)

    keys = {f"user:{i}": {"name": f"user-{i}", "score": i * i} for i in range(100)}
    for key, value in keys.items():
        store.put(key, value, via=rng.choice(net.peer_ids))
    print(f"stored        : {len(keys)} keys, {store.total_placements()} placements (r=3)")

    hops = []
    for key, value in keys.items():
        via = rng.choice(net.peer_ids)
        assert store.get(key, via=via) == value
        hops.append(router.route_key(via, key).hops)
    print(f"lookups       : 100/100 correct, hops mean={statistics.fmean(hops):.2f} max={max(hops)}")

    loads = sorted(store.load_per_peer().values())
    print(f"load balance  : min={loads[0]} median={loads[len(loads)//2]} max={loads[-1]} keys/peer")

    victim = rng.choice(net.peer_ids)
    net.crash(victim)
    net.run_until_stable(max_rounds=2000)
    store.drop_peer(victim)
    moved = store.rebalance()
    print(f"crash + heal  : peer removed, overlay re-stabilized, {moved} placements moved")

    survivors = sum(1 for key, value in keys.items() if store.get(key) == value)
    print(f"durability    : {survivors}/{len(keys)} keys intact after the crash")
    assert survivors == len(keys)


if __name__ == "__main__":
    main()
