#!/usr/bin/env python
"""Churn recovery: the overlay self-heals through joins, leaves, crashes.

Scenario from the paper's Section 4: a stable 24-peer network endures a
burst of membership events — a crash of a ring-extreme peer (the hardest
case: it holds a seam ring edge), two graceful leaves, and three joins —
and returns to the exact ideal topology after each wave.

Run:  python examples/churn_recovery.py
"""

import random

from repro import build_random_network
from repro.workloads.initial import random_peer_ids


def stabilize(net, label: str) -> None:
    report = net.run_until_stable(max_rounds=5000)
    ok = net.matches_ideal()
    print(f"{label:<28} -> stable after {report.rounds_to_stable:>3} rounds, ideal={ok}")
    assert ok


def main() -> None:
    rng = random.Random(7)
    net = build_random_network(n=24, seed=7)
    stabilize(net, "initial stabilization")

    # crash the largest peer: it owns the seam-holding max node
    net.crash(net.peer_ids[-1])
    stabilize(net, "crash of ring-extreme peer")

    for _ in range(2):
        victim = rng.choice(net.peer_ids)
        net.leave(victim)
        stabilize(net, f"graceful leave of {victim % 10_000}…")

    for _ in range(3):
        new_id = random_peer_ids(1, rng, net.space)[0]
        while new_id in net.peers:
            new_id = random_peer_ids(1, rng, net.space)[0]
        gateway = rng.choice(net.peer_ids)
        net.join(new_id, gateway)
        stabilize(net, f"join of {new_id % 10_000}…")

    print(f"final network : {len(net.peers)} peers, all invariants hold")


if __name__ == "__main__":
    main()
