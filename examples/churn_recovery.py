#!/usr/bin/env python
"""Churn recovery: the overlay self-heals through joins, leaves, crashes.

The paper's Section 4 dynamics, expressed as one declarative scenario
campaign (see ``docs/SCENARIOS.md``): a stable 24-peer network endures
a crash of both ring-seam extremes (the hardest case: they hold the
seam ring edge and the wrap pointers), a wave of graceful leaves and a
flash crowd of joins — with lookups and KV operations flowing the whole
time — and returns to the exact ideal topology.

Run:  python examples/churn_recovery.py
"""

from repro.scenarios import EventSpec, ScenarioSpec, TrafficSpec, run_scenario
from repro.traffic.messages import OP_GET, OP_LOOKUP, OP_PUT

SPEC = ScenarioSpec(
    name="churn-recovery",
    n=24,
    seed=7,
    start="ideal",
    rounds=30,
    events=(
        EventSpec(at=4, kind="crash_wave", params={"count": 2, "targeting": "extremes"}),
        EventSpec(at=12, kind="leave_wave", params={"count": 2}),
        EventSpec(at=20, kind="flash_crowd", params={"count": 3}),
    ),
    traffic=TrafficSpec(
        rate=1.5,
        op_mix=((OP_LOOKUP, 0.6), (OP_GET, 0.2), (OP_PUT, 0.2)),
    ),
    description="Section 4 churn waves with live traffic",
)


def main() -> None:
    report = run_scenario(SPEC)
    print(f"campaign: {SPEC.name} (n={SPEC.n}, seed={SPEC.seed})")
    print(f"events applied        : {dict(report.event_census)}")
    print(f"peers                 : {report.peers_start} -> {report.peers_final}")
    print(
        f"recovery              : stable {report.recovery_rounds} rounds after "
        f"the last wave, ideal={report.ideal}"
    )
    slo = report.slo
    print(
        f"traffic under churn   : {slo['completed']} ops, "
        f"{slo['success_rate']:.1%} success, outcomes={slo['outcomes']}"
    )
    worst = max(report.samples, key=lambda s: s.check_violations)
    print(
        f"deepest damage        : {worst.check_violations} checker violations "
        f"across {worst.failing_peers} peers at round {worst.round}"
    )
    assert report.stable and report.ideal
    print(f"final network : {report.peers_final} peers, all invariants hold")


if __name__ == "__main__":
    main()
