#!/usr/bin/env python
"""Quickstart: stabilize a Re-Chord overlay from a random tangle.

Builds 32 peers wired as a random weakly connected digraph (no virtual
nodes, no structure), lets the six self-stabilization rules run, and
verifies the outcome: the unique ideal topology, with the classical
Chord graph embedded in it (Fact 2.1).

Run:  python examples/quickstart.py
"""

from repro import build_random_network
from repro.core.ideal import chord_edges
from repro.core.metrics import collect


def main() -> None:
    net = build_random_network(n=32, seed=42)
    print(f"initial state : {len(net.peers)} peers, weakly connected tangle")

    report = net.run_until_stable(max_rounds=2000, track_almost=True)
    print(f"almost stable : round {report.rounds_to_almost} (all desired edges exist)")
    print(f"stable        : round {report.rounds_to_stable} (configuration is a fixed point)")

    assert net.matches_ideal(), "stable state must equal the ideal topology"
    print("ideal topology: reached exactly")

    want = chord_edges(net.space, net.peer_ids)
    have = net.rechord_projection()
    assert all(e in have for e in want)
    print(f"Fact 2.1      : all {len(want)} Chord edges embedded in the overlay")

    m = collect(net)
    print(
        f"structure     : {m.real_nodes} real + {m.virtual_nodes} virtual nodes, "
        f"{m.normal_edges} normal + {m.connection_edges} connection edges"
    )


if __name__ == "__main__":
    main()
