#!/usr/bin/env python
"""Self-stabilization from adversarial initial states — as scenarios.

Theorem 1.1 promises recovery from *any* weakly connected start.  This
example expresses the worst starts we have as declarative scenario
campaigns (see ``docs/SCENARIOS.md``): degenerate shapes (the line is
the slowest information spreader), a heavily corrupted random graph,
and the interleaved two-ring split that permanently breaks classic
Chord — each one runs with live traffic and must converge to the exact
ideal topology.  The classic-Chord contrast is printed last.

Run:  python examples/adversarial_start.py
"""

import random

from repro.chord.network import ChordNetwork
from repro.idspace.ring import IdSpace
from repro.scenarios import ScenarioSpec, TrafficSpec, make_scenario, run_scenario
from repro.workloads.initial import SHAPES, random_peer_ids

N = 18
TRAFFIC = TrafficSpec(rate=1.0)


def show(spec: ScenarioSpec) -> None:
    report = run_scenario(spec)
    slo = report.slo or {}
    print(
        f"{spec.name:<26} stable@{report.rounds_adversity + report.recovery_rounds:>3}"
        f"  ideal={report.ideal}  lookups ok={slo.get('success_rate', 1.0):.0%}"
    )
    assert report.stable and report.ideal


def main() -> None:
    # every degenerate shape, with lookups flowing from round 0
    for shape in sorted(SHAPES):
        show(
            ScenarioSpec(
                name=f"shape: {shape}", n=N, seed=5, start=shape,
                rounds=8, traffic=TRAFFIC,
            )
        )

    # a random start buried under garbage edges and phantom virtuals
    show(
        ScenarioSpec(
            name="heavy corruption", n=N, seed=5, start="random",
            start_params={"corrupt": {"virtual_fraction": 1.0, "garbage_edges": 10}},
            rounds=8, traffic=TRAFFIC,
        )
    )

    # the interleaved rings: as an initial state, and as a mid-run reset
    show(
        ScenarioSpec(
            name="two interleaved rings", n=N, seed=3, start="two_rings",
            rounds=8, traffic=TRAFFIC,
        )
    )
    show(make_scenario("ring-split", n=N, seed=3))

    # classic Chord never repairs the equivalent split
    space = IdSpace()
    ids = random_peer_ids(N, random.Random(3), space)
    chord = ChordNetwork.two_rings(ids, space, fingers_per_round=2)
    chord.run(400)
    print(
        f"{'classic Chord, same split':<26} after 400 rounds: "
        f"ring_correct={chord.ring_correct()}"
    )
    assert not chord.ring_correct()


if __name__ == "__main__":
    main()
