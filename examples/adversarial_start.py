#!/usr/bin/env python
"""Self-stabilization from adversarial initial states.

Theorem 1.1 promises recovery from *any* weakly connected start.  This
example throws the worst shapes we have at the protocol — a line (the
slowest information spreader), a star, two bridged cliques, a lollipop,
a heavily corrupted state full of garbage marked edges and phantom
virtual nodes, and the interleaved two-ring split that permanently
breaks classic Chord — and shows each one converging to the exact ideal
topology.  The classic-Chord contrast is printed last.

Run:  python examples/adversarial_start.py
"""

from repro.chord.network import ChordNetwork
from repro.experiments.baseline import _rechord_two_rings
from repro.idspace.ring import IdSpace
from repro.workloads.initial import (
    SHAPES,
    build_random_network,
    build_shaped_network,
    corrupt_network,
    random_peer_ids,
)
import random

N = 18


def show(label: str, net) -> None:
    report = net.run_until_stable(max_rounds=5000)
    ok = net.matches_ideal()
    print(f"{label:<26} stable@{report.rounds_to_stable:>3}  ideal={ok}")
    assert ok


def main() -> None:
    for shape in sorted(SHAPES):
        show(f"shape: {shape}", build_shaped_network(shape, N, seed=5))

    net = build_random_network(n=N, seed=5)
    corrupt_network(net, seed=99, virtual_fraction=1.0, garbage_edges=10)
    show("heavy corruption", net)

    space = IdSpace()
    ids = random_peer_ids(N, random.Random(3), space)
    show("two interleaved rings", _rechord_two_rings(ids, space))

    # classic Chord never repairs the equivalent split
    chord = ChordNetwork.two_rings(ids, space, fingers_per_round=2)
    chord.run(400)
    print(f"{'classic Chord, same split':<26} after 400 rounds: ring_correct={chord.ring_correct()}")
    assert not chord.ring_correct()


if __name__ == "__main__":
    main()
